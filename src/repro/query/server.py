"""The serving daemon: the batch API behind three HTTP endpoints.

A stdlib-only (``http.server``) daemon exposing the
:class:`~repro.query.engine.QueryEngine` for interactive traffic:

* ``GET /v1/status?prefix=P&on=YYYY-MM-DD`` — one unified
  :class:`~repro.query.engine.PrefixStatus` as JSON;
* ``POST /v1/batch`` — ``{"queries": [{"prefix": P, "on": D?}, ...]}``
  answered in order as ``{"results": [...]}``;
* ``GET /healthz`` — liveness plus index sizes and the request counters;
* ``GET /metrics`` — the run's :class:`~repro.obs.MetricsRegistry` in
  Prometheus text format (0.0.4).

The engine's index is immutable, so one engine serves every handler
thread without locks.  Per-request timing flows into the run's
:class:`~repro.obs.Instrumentation` — legacy per-endpoint counters for
the ``/healthz`` body plus a ``repro_server_request_seconds`` histogram
in the registry — rather than per-request stage records, so a
long-running daemon's memory stays flat.  ``/healthz`` and ``/metrics``
never touch the engine: the index facts they report are snapshotted
once at startup (the index cannot change), so a health probe or a
scrape costs no lookup-path allocations.  SIGTERM/SIGINT drain
gracefully: both endpoints flip to 503 so load balancers stop sending
traffic, the accept loop stops, in-flight requests finish, then the
socket closes.
"""

from __future__ import annotations

import json
import signal
import threading
from datetime import date
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from time import perf_counter
from urllib.parse import parse_qs, urlsplit

from ..net.prefix import IPv4Prefix, PrefixError
from ..net.timeline import parse_date
from .engine import BatchParseError, QueryEngine

__all__ = ["QueryServer"]

#: Largest accepted ``/v1/batch`` request body, in bytes.
_MAX_BATCH_BYTES = 8 << 20


class _BadRequest(ValueError):
    """A client error: reported as 400 with a JSON message."""


def _parse_day(args: dict, *, default: date) -> date:
    raw = args.get("on")
    if raw is None:
        return default
    try:
        return parse_date(str(raw))
    except ValueError as error:
        raise _BadRequest(str(error)) from None


def _parse_prefix(raw: object) -> IPv4Prefix:
    if not isinstance(raw, str) or not raw:
        raise _BadRequest("missing prefix")
    try:
        return IPv4Prefix.parse(raw)
    except PrefixError as error:
        raise _BadRequest(str(error)) from None


class _Handler(BaseHTTPRequestHandler):
    """One request; the engine hangs off the server object."""

    server: "QueryServer"  # type: ignore[assignment]
    protocol_version = "HTTP/1.1"

    # -- plumbing ----------------------------------------------------------

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if self.server.verbose:  # pragma: no cover - log formatting
            super().log_message(format, *args)

    def _reply(self, status: int, payload: dict) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _timed(self, endpoint: str, handler) -> None:
        instr = self.server.instrumentation
        started = perf_counter()
        try:
            handler()
        except _BadRequest as error:
            instr.incr("serve_client_errors")
            self._reply(400, {"error": str(error)})
        except Exception as error:  # pragma: no cover - defensive
            instr.incr("serve_server_errors")
            self._reply(500, {"error": f"{type(error).__name__}: {error}"})
        finally:
            elapsed = perf_counter() - started
            self.server.request_seconds.observe(elapsed, endpoint=endpoint)
            instr.incr(f"serve_{endpoint}_requests")
            instr.incr(f"serve_{endpoint}_us_total", int(elapsed * 1e6))

    # -- endpoints ---------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        url = urlsplit(self.path)
        if url.path == "/v1/status":
            self._timed("status", lambda: self._status(url.query))
        elif url.path == "/healthz":
            self._timed("healthz", self._healthz)
        elif url.path == "/metrics":
            self._timed("metrics", self._metrics)
        else:
            self.server.instrumentation.incr("serve_client_errors")
            self._reply(404, {"error": f"unknown path {url.path}"})

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        url = urlsplit(self.path)
        if url.path == "/v1/batch":
            self._timed("batch", self._batch)
        else:
            self.server.instrumentation.incr("serve_client_errors")
            self._reply(404, {"error": f"unknown path {url.path}"})

    def _status(self, query: str) -> None:
        engine = self.server.engine
        args = {k: v[-1] for k, v in parse_qs(query).items()}
        prefix = _parse_prefix(args.get("prefix"))
        day = _parse_day(args, default=engine.default_day)
        self._reply(200, engine.lookup(prefix, day).to_dict())

    def _batch(self) -> None:
        engine = self.server.engine
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise _BadRequest("missing request body")
        if length > _MAX_BATCH_BYTES:
            raise _BadRequest(f"batch body over {_MAX_BATCH_BYTES} bytes")
        try:
            payload = json.loads(self.rfile.read(length))
        except json.JSONDecodeError as error:
            raise _BadRequest(f"bad JSON body: {error}") from None
        queries = (
            payload.get("queries") if isinstance(payload, dict) else payload
        )
        if not isinstance(queries, list):
            raise _BadRequest('expected {"queries": [...]} or a JSON list')
        # Validate the whole batch before answering any of it, so one
        # response names every malformed item — not just the first.
        pairs: list[tuple[IPv4Prefix, date]] = []
        errors: list[tuple[int, str, str]] = []
        for position, item in enumerate(queries):
            if isinstance(item, str):
                item = {"prefix": item}
            if not isinstance(item, dict):
                errors.append((position, repr(item), "bad query item"))
                continue
            try:
                pairs.append(
                    (
                        _parse_prefix(item.get("prefix")),
                        _parse_day(item, default=engine.default_day),
                    )
                )
            except _BadRequest as error:
                errors.append((position, repr(item), str(error)))
        if errors:
            raise _BadRequest(str(BatchParseError(errors)))
        results = engine.lookup_many(pairs)
        self._reply(200, {"results": [status.to_dict() for status in results]})

    def _healthz(self) -> None:
        # Registry/snapshot state only — no engine, no lookup path.
        draining = self.server.draining
        payload = {
            "status": "draining" if draining else "ok",
            "counters": dict(self.server.instrumentation.counters),
        }
        payload.update(self.server.health_snapshot)
        self._reply(503 if draining else 200, payload)

    def _metrics(self) -> None:
        if self.server.draining:
            self._reply(503, {"error": "draining"})
            return
        body = self.server.registry.expose().encode("utf-8")
        self.send_response(200)
        self.send_header(
            "Content-Type", "text/plain; version=0.0.4; charset=utf-8"
        )
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)


class QueryServer(ThreadingHTTPServer):
    """The daemon: a threading HTTP server wrapping one engine.

    ``port=0`` binds an ephemeral port (tests); :attr:`server_address`
    holds the bound address either way.  ``block_on_close`` (the
    stdlib default) makes :meth:`shutdown` + ``server_close`` a
    graceful drain: no new connections, in-flight requests finish.
    """

    daemon_threads = False
    block_on_close = True

    def __init__(
        self,
        engine: QueryEngine,
        host: str = "127.0.0.1",
        port: int = 8765,
        *,
        verbose: bool = False,
    ) -> None:
        self.engine = engine
        self.instrumentation = engine.instrumentation
        self.registry = self.instrumentation.registry
        self.verbose = verbose
        self._draining = threading.Event()
        # /healthz facts, snapshotted once: the index is immutable, so
        # probes never walk the engine (and cannot allocate lookup
        # state) — they read this dict and the counter dict, nothing else.
        index = engine.index
        self.health_snapshot = {
            "window": [
                index.window.start.isoformat(),
                index.window.end.isoformat(),
            ],
            "index": index.sizes(),
        }
        entries = self.registry.gauge(
            "repro_server_index_entries",
            help="Entries in the served query index, by store.",
            labels=("store",),
        )
        for store, count in self.health_snapshot["index"].items():
            entries.set(count, store=store)
        self._draining_gauge = self.registry.gauge(
            "repro_server_draining",
            help="1 while the server is draining after SIGTERM/SIGINT.",
        )
        self._draining_gauge.set(0)
        self.request_seconds = self.registry.histogram(
            "repro_server_request_seconds",
            help="Request handling latency, by endpoint.",
            labels=("endpoint",),
        )
        super().__init__((host, port), _Handler)

    @property
    def draining(self) -> bool:
        """True once a drain signal was received (health flips to 503)."""
        return self._draining.is_set()

    def install_signal_handlers(self) -> None:
        """Drain on SIGTERM/SIGINT (a no-op off the main thread)."""
        if threading.current_thread() is not threading.main_thread():
            return
        for signum in (signal.SIGTERM, signal.SIGINT):
            signal.signal(signum, self._handle_signal)

    def _handle_signal(self, signum, frame) -> None:
        # shutdown() blocks until serve_forever exits, so it must not be
        # called from the thread running serve_forever (the main thread,
        # where signal handlers execute) — hand it to a helper thread.
        if not self._draining.is_set():
            self._draining.set()
            self._draining_gauge.set(1)
            self.instrumentation.incr("serve_drains")
            threading.Thread(target=self.shutdown, daemon=True).start()

    def serve_until_shutdown(self) -> None:
        """Serve until :meth:`shutdown` (or a drain signal), then close."""
        try:
            self.serve_forever()
        finally:
            self.server_close()
