"""Analysis tests over a small hand-built world with exact expectations.

Unlike the synthetic-generator tests, every archive entry here is written
out longhand, so each analysis result can be asserted exactly.
"""

from datetime import date

import pytest

from repro.analysis import (
    analyze_deallocation,
    analyze_irr,
    analyze_rpki_effectiveness,
    analyze_rpki_uptake,
    analyze_unallocated,
    analyze_visibility,
    classify_drop,
    detect_incidents,
    load_entries,
)
from repro.bgp.collector import PeerRegistry
from repro.bgp.messages import ASPath
from repro.bgp.ribs import RouteInterval, RouteIntervalStore
from repro.drop.categories import Category
from repro.drop.droplist import DropArchive, DropEpisode
from repro.drop.sbl import SblDatabase, SblRecord
from repro.irr.radb import IrrDatabase, RouteObjectRecord
from repro.irr.rpsl import RouteObject
from repro.net.prefix import IPv4Prefix
from repro.net.timeline import DateWindow
from repro.rirstats.registry import ResourceRegistry
from repro.rpki.archive import RoaArchive
from repro.rpki.roa import Roa, RoaRecord
from repro.synth.config import ScenarioConfig
from repro.synth.world import GroundTruth, World

WINDOW = DateWindow(date(2020, 1, 1), date(2021, 12, 31))

HIJACKED = IPv4Prefix.parse("203.0.0.0/20")      # hijacked, withdrawn
HOSTING = IPv4Prefix.parse("203.1.0.0/20")       # MH, stays up, dealloc'd
SNOWSHOE = IPv4Prefix.parse("203.2.0.0/24")      # SS, removed, signs after
UNALLOC = IPv4Prefix.parse("203.3.0.0/20")       # UA, withdrawn
BACKGROUND = IPv4Prefix.parse("198.51.100.0/24")  # never on DROP, signs


def build_world() -> World:
    peers = PeerRegistry()
    for asn in range(64500, 64510):
        peers.add_peer(asn, "route-views2")
    all_peers = frozenset(range(10))

    bgp = RouteIntervalStore(data_end=WINDOW.end)

    def announce(prefix, origin, start, end, transit=64999):
        bgp.add(RouteInterval(
            prefix=prefix, path=ASPath.of(transit, origin),
            start=start, end=end, observers=all_peers,
        ))

    # Hijack: announced a month before listing, withdrawn 10 days after.
    announce(HIJACKED, 65001, date(2020, 5, 18), date(2020, 6, 11))
    # Hosting: announced always.
    announce(HOSTING, 65002, date(2019, 1, 1), None)
    # Snowshoe: announced always by its holder.
    announce(SNOWSHOE, 65003, date(2019, 1, 1), None)
    # Unallocated: brief announcement, withdrawn fast.
    announce(UNALLOC, 65004, date(2020, 7, 20), date(2020, 8, 10))
    # Background: announced always, signs mid-window.
    announce(BACKGROUND, 65005, date(2019, 1, 1), None)

    resources = ResourceRegistry()
    resources.delegate_to_rir("APNIC", "203.0.0.0/8")
    resources.delegate_to_rir("RIPE", "198.51.100.0/24")
    resources.allocate(HIJACKED, "APNIC", date(2010, 1, 1), holder="victim")
    resources.allocate(HOSTING, "APNIC", date(2012, 1, 1), holder="bp-host")
    resources.allocate(SNOWSHOE, "APNIC", date(2012, 1, 1), holder="mailer")
    resources.allocate(BACKGROUND, "RIPE", date(2012, 1, 1), holder="isp")
    # UNALLOC stays in the pool.
    # Hosting prefix is deallocated five days before its DROP removal.
    resources.deallocate(HOSTING, date(2021, 5, 27))

    irr = IrrDatabase()
    # Hijacker registers a route object 3 days before announcing.
    irr.add(RouteObjectRecord(
        route=RouteObject(prefix=HIJACKED, origin=65001,
                          maintainer="MAINT-EVIL", org_id="ORG-EVIL"),
        created=date(2020, 5, 15),
        deleted=date(2020, 6, 20),
    ))

    roas = RoaArchive()
    # Snowshoe prefix signed by a different ASN after removal.
    roas.add(RoaRecord(Roa(SNOWSHOE, 65100, trust_anchor="APNIC"),
                       created=date(2021, 3, 1)))
    # Background prefix signed by its own origin during the window.
    roas.add(RoaRecord(Roa(BACKGROUND, 65005, trust_anchor="RIPE"),
                       created=date(2020, 6, 1)))

    drop = DropArchive(WINDOW)
    sbl = SblDatabase()

    def list_prefix(prefix, added, removed, sbl_id, text):
        drop.add(DropEpisode(prefix=prefix, added=added, removed=removed,
                             sbl_id=sbl_id))
        if text is not None:
            sbl.add(SblRecord(sbl_id=sbl_id, prefix=prefix, text=text,
                              created=added))

    list_prefix(HIJACKED, date(2020, 6, 1), None, "SBL1",
                "hijacked range on AS65001")
    list_prefix(HOSTING, date(2020, 3, 1), date(2021, 6, 1), "SBL2",
                "spammer hosting operation")
    list_prefix(SNOWSHOE, date(2020, 4, 1), date(2021, 1, 1), "SBL3",
                "snowshoe range")
    list_prefix(UNALLOC, date(2020, 8, 1), None, "SBL4",
                "unallocated bogon announced")

    return World(
        config=ScenarioConfig(seed=0, window=WINDOW),
        window=WINDOW,
        peers=peers,
        bgp=bgp,
        resources=resources,
        irr=irr,
        roas=roas,
        drop=drop,
        sbl=sbl,
        manual_overrides={},
        truth=GroundTruth(),
    )


@pytest.fixture(scope="module")
def world():
    return build_world()


@pytest.fixture(scope="module")
def entries(world):
    return load_entries(world)


class TestEntryViews:
    def test_four_entries(self, entries):
        assert len(entries) == 4

    def test_categories(self, entries):
        by_prefix = {e.prefix: e for e in entries}
        assert by_prefix[HIJACKED].categories == {Category.HIJACKED}
        assert by_prefix[HOSTING].categories == {
            Category.MALICIOUS_HOSTING
        }
        assert by_prefix[SNOWSHOE].categories == {Category.SNOWSHOE}
        assert by_prefix[UNALLOC].categories == {Category.UNALLOCATED}

    def test_regions_and_allocation(self, entries):
        by_prefix = {e.prefix: e for e in entries}
        assert by_prefix[HIJACKED].region == "APNIC"
        assert by_prefix[UNALLOC].unallocated
        assert not by_prefix[HOSTING].unallocated

    def test_no_incidents_detected(self, entries):
        assert detect_incidents(entries) == set()


class TestExactAnalyses:
    def test_classification(self, world, entries):
        result = classify_drop(world, entries)
        assert result.total_prefixes == 4
        assert result.with_record == 4
        assert result.bar(Category.HIJACKED).exclusive_prefixes == 1
        assert result.incident_prefixes == 0

    def test_visibility(self, world, entries):
        result = analyze_visibility(world, entries)
        # Hijacked and unallocated withdrawn; others not.
        assert result.withdrawn_total == 2
        assert result.eligible_total == 4
        assert result.category_rate(Category.HIJACKED) == 1.0
        assert result.category_rate(Category.UNALLOCATED) == 1.0
        assert result.category_rate(Category.SNOWSHOE) == 0.0

    def test_deallocation(self, world, entries):
        result = analyze_deallocation(world, entries)
        assert result.by_category[Category.MALICIOUS_HOSTING] == (1, 1)
        assert result.removed_total == 2
        assert result.removed_deallocated == 1
        # Deallocated 2021-05-27, removed 2021-06-01: within a week.
        assert result.removed_within_week_of_dealloc == 1

    def test_rpki_uptake(self, world, entries):
        table = analyze_rpki_uptake(world, entries)
        apnic = table.row("APNIC")
        # Snowshoe (removed) signed; hijacked (present) did not.
        assert apnic.removed_total == 2
        assert apnic.removed_signed == 1
        assert apnic.present_total == 1
        assert apnic.present_signed == 0
        # Background prefix is the never-on-DROP population.
        ripe = table.row("RIPE")
        assert (ripe.never_signed, ripe.never_total) == (1, 1)
        # The signer ASN differed from the origin at listing.
        assert table.signed_different_asn == 1
        assert table.signed_same_asn == 0

    def test_irr(self, world, entries):
        result = analyze_irr(world, entries)
        assert result.with_route_object == 1
        assert result.created_month_before == 1
        assert result.removed_month_after == 1
        assert result.asn_labeled_hijacks == 1
        assert result.hijacker_asn_matches == 1
        assert result.org_id_counts == {"ORG-EVIL": 1}
        timing = result.timings[0]
        assert timing.days_to_bgp == 3
        assert timing.days_to_drop == 17

    def test_rpki_effectiveness(self, world, entries):
        result = analyze_rpki_effectiveness(world, entries)
        # No hijacked prefix was signed before listing.
        assert result.presigned_count == 0
        assert result.rpki_valid_hijacks == ()

    def test_unallocated(self, world, entries):
        result = analyze_unallocated(world, entries)
        assert result.total == 1
        assert result.listings[0].prefix == UNALLOC
        assert result.count_for("APNIC") == 1
        # Listed 2020-08-01, APNIC AS0 policy live 2020-09-02: before.
        assert not result.listings[0].after_region_as0
