"""Defense-effectiveness metrics for composed scenario worlds.

:func:`evaluate_scenario` measures, for every attack the director
injected, how much of the full-table peer set actually carried the
attack announcement — on the attack day (what ROV/route-server
filtering stopped) and again on the listing day (what DROP
subscription additionally stopped).  The per-family rollups are the
data points sweep reports turn into deployment-rate curves.

Attack intervals are matched by ``(prefix, origin, active day)``, not
by prefix alone: for a same-prefix hijack the victim's own interval is
active on the attack day too, and a naive union over
``peers_observing`` would report total visibility for every cell.

:func:`evaluate_scenario_from_index` computes the identical document
from a persisted :class:`~repro.query.index.QueryIndex` plus the truth
sidecar — no world load at all, which is what makes warm sweep cells
nearly free.  Parity holds exactly: index observer sets are interned
pre-intersected with the full-table peer set, and partial observations
are filtered to full-table peers at build time, so the index-side
union equals the world-side ``observers & full_table``.
"""

from __future__ import annotations

from collections import defaultdict
from datetime import date
from typing import Callable

from .compose import AttackTruth, ScenarioTruth

__all__ = ["evaluate_scenario", "evaluate_scenario_from_index"]


def _attack_observers(world, attack: AttackTruth, day: date) -> frozenset[int]:
    """Peers carrying the attack announcement on ``day``."""
    observers: set[int] = set()
    for interval in world.bgp.intervals_exact(attack.attack_prefix):
        if interval.active_on(day) and interval.origin == attack.attack_origin:
            observers |= interval.observers_on(day)
    return frozenset(observers)


def _rollup(
    truth: ScenarioTruth,
    total_peers: int,
    visibility_on: Callable[[AttackTruth, date], float],
) -> dict:
    """The shared metrics document, given a per-day visibility function."""
    per_attack = []
    by_family: dict[str, list[dict]] = defaultdict(list)
    for attack in truth.attacks:
        visibility = visibility_on(attack, attack.attack_day)
        post_day = attack.listed_day or attack.attack_day
        post = visibility_on(attack, post_day)
        row = {
            "family": attack.family,
            "index": attack.index,
            "attack_prefix": str(attack.attack_prefix),
            "expected_validity": attack.expected_validity,
            "visibility": round(visibility, 6),
            "blocked": round(1.0 - visibility, 6),
            "post_listing_visibility": round(post, 6),
            "listed": attack.listed_day is not None,
        }
        per_attack.append(row)
        by_family[attack.family].append(row)

    families = {}
    for family, rows in sorted(by_family.items()):
        n = len(rows)
        visibility = sum(r["visibility"] for r in rows) / n
        post = sum(r["post_listing_visibility"] for r in rows) / n
        families[family] = {
            "attacks": n,
            "visibility": round(visibility, 6),
            "blocked": round(1.0 - visibility, 6),
            "post_listing_visibility": round(post, 6),
        }

    return {
        "full_table_peers": total_peers,
        "defenses": {
            "rov_rate": round(truth.realized_rov_rate, 6),
            "route_server_rate": round(
                truth.realized_route_server_rate, 6
            ),
            "drop_rate": round(truth.realized_drop_rate, 6),
        },
        "families": families,
        "attacks": per_attack,
    }


def evaluate_scenario(world, truth: ScenarioTruth) -> dict:
    """Per-attack and per-family effectiveness numbers (JSON-ready).

    ``visibility`` is the fraction of full-table peers carrying the
    attack on the attack day; ``blocked`` is its complement;
    ``post_listing_visibility`` is measured on the listing day (equal
    to ``visibility`` for families DROP never lists).
    """
    full = world.peers.full_table_peer_ids()

    def visibility_on(attack: AttackTruth, day: date) -> float:
        observed = _attack_observers(world, attack, day) & full
        return len(observed) / max(1, len(full))

    return _rollup(truth, len(full), visibility_on)


def evaluate_scenario_from_index(index, truth: ScenarioTruth) -> dict:
    """:func:`evaluate_scenario`, from a query index instead of a world.

    ``index`` is a :class:`~repro.query.index.QueryIndex` built from
    the same scenario world (typically reloaded from the cache entry's
    persisted sidecar); the returned document is byte-equal to the
    world-based evaluation.
    """

    def visibility_on(attack: AttackTruth, day: date) -> float:
        observers: set[int] = set()
        for entry in index.routes.get(attack.attack_prefix) or ():
            if entry.active_on(day) and entry.origin == attack.attack_origin:
                observers |= entry.observers_on(day, index.observer_sets)
        return len(observers) / max(1, index.total_peers)

    return _rollup(truth, index.total_peers, visibility_on)
