"""Tests for the query/serve CLI surface, including the golden run.

The golden test is the PR's equivalence contract: ``repro-drop query``
batch output must be byte-identical to the answers computed from the
very world a full ``repro-drop report`` run used (same seed, same cache
entry), so the interactive path can never diverge from the pipeline.
"""

import io
import json

import pytest

from repro.cli import build_parser, main
from repro.query import INDEX_FILENAME, QueryEngine, build_index
from repro.runtime import WorldCache
from repro.synth import ScenarioConfig


@pytest.fixture(scope="module")
def report_world(tmp_path_factory):
    """The world a full report run on the default seed reads."""
    # module-scoped CLI run: stdout is swallowed here, not asserted on.
    assert main(["report", "--exp", "tab1"]) == 0
    outcome = WorldCache().fetch(ScenarioConfig.tiny(seed=2022))
    assert outcome.status == "hit"
    return outcome.world


class TestParser:
    def test_query_defaults(self):
        args = build_parser().parse_args(["query", "1.2.3.0/24"])
        assert args.prefixes == ["1.2.3.0/24"]
        assert args.on is None
        assert not args.stdin
        assert args.format == "json"
        assert args.scale == "tiny" and args.seed == 2022

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1"
        assert args.port == 8765

    def test_query_format_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["query", "1.2.3.0/24",
                                       "--format", "xml"])


class TestQueryErrors:
    def test_bad_prefix(self, capsys):
        assert main(["query", "999.0.0.0/8"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_bad_date(self, capsys):
        assert main(["query", "10.0.0.0/8", "--on", "2021-02-30"]) == 2
        assert "invalid date" in capsys.readouterr().err

    def test_nothing_to_query(self, capsys):
        assert main(["query"]) == 2
        assert "nothing to query" in capsys.readouterr().err

    def test_bad_stdin_line(self, capsys, monkeypatch):
        monkeypatch.setattr("sys.stdin", io.StringIO("10.0.0.0/8 x y\n"))
        assert main(["query", "--stdin"]) == 2
        assert "bad query line" in capsys.readouterr().err


class TestQueryGolden:
    def test_batch_output_matches_report_world(self, report_world, capsys):
        """Byte-identity between `query` output and the report's world."""
        world = report_world
        engine = QueryEngine(build_index(world))
        days = [world.window.start, world.window.end]
        prefixes = list(world.drop.unique_prefixes())[:8]
        prefixes += [p for i, p in enumerate(world.bgp.prefixes())
                     if i % 400 == 0]
        expected = [
            json.dumps(engine.lookup(p, d).to_dict(), sort_keys=True)
            for d in days
            for p in prefixes
        ]
        lines = []
        for day in days:
            argv = ["query", "--on", day.isoformat()]
            argv += [str(p) for p in prefixes]
            assert main(argv) == 0
            lines += capsys.readouterr().out.splitlines()
        assert lines == expected

    def test_stdin_batch_with_dates(self, report_world, capsys, monkeypatch):
        world = report_world
        engine = QueryEngine(build_index(world))
        prefix = world.drop.unique_prefixes()[0]
        day = world.window.start
        monkeypatch.setattr(
            "sys.stdin",
            io.StringIO(
                f"# comment\n\n{prefix} {day.isoformat()}\n{prefix}\n"
            ),
        )
        assert main(["query", "--stdin"]) == 0
        lines = capsys.readouterr().out.splitlines()
        assert lines == [
            json.dumps(engine.lookup(prefix, d).to_dict(), sort_keys=True)
            for d in (day, world.window.end)
        ]

    def test_table_format(self, report_world, capsys):
        prefix = report_world.drop.unique_prefixes()[0]
        assert main(["query", str(prefix), "--format", "table"]) == 0
        out = capsys.readouterr().out.splitlines()
        assert out[0].split() == ["prefix", "on", "drop", "sbl", "irr",
                                  "rpki", "bgp", "peers"]
        assert out[1].startswith(str(prefix))

    def test_query_over_archives(self, report_world, tmp_path, capsys):
        out_dir = tmp_path / "archives"
        assert main(["build", "--out", str(out_dir)]) == 0
        capsys.readouterr()
        prefix = report_world.drop.unique_prefixes()[0]
        assert main(["query", "--archives", str(out_dir), str(prefix)]) == 0
        first = capsys.readouterr().out
        assert json.loads(first)["prefix"] == str(prefix)
        # The archive dir now holds a persisted index; a second query
        # answers identically from it without reloading the world.
        assert (out_dir / INDEX_FILENAME).exists()
        assert main(["query", "--archives", str(out_dir), str(prefix)]) == 0
        assert capsys.readouterr().out == first


class TestQueryFaultInjection:
    def test_torn_index_is_evicted_and_rebuilt(
        self, report_world, tmp_path, capsys, monkeypatch
    ):
        """Torn persisted indexes (binary and JSON) never reach the user."""
        prefix = report_world.drop.unique_prefixes()[0]
        assert main(["query", str(prefix)]) == 0
        clean = capsys.readouterr().out
        index_file = (
            WorldCache().directory_for(ScenarioConfig.tiny(seed=2022))
            / INDEX_FILENAME
        )
        assert index_file.exists()
        timings = tmp_path / "timings.json"
        # The binary store is preferred, so tearing the JSON alone is
        # invisible; tear both layers and every fallback must fire.
        monkeypatch.setenv(
            "REPRO_FAULTS",
            "truncate@store.load,truncate@query.index.load",
        )
        assert main(["query", str(prefix),
                     "--timings-out", str(timings)]) == 0
        assert capsys.readouterr().out == clean
        counters = json.loads(timings.read_text())["counters"]
        assert counters["store_evictions"] == 1
        assert counters["query_index_evictions"] == 1
        assert counters["query_index_builds"] == 1
        # The rebuilt index was re-persisted and is healthy again.
        monkeypatch.delenv("REPRO_FAULTS")
        assert index_file.exists()
        assert main(["query", str(prefix),
                     "--timings-out", str(timings)]) == 0
        assert capsys.readouterr().out == clean
        counters = json.loads(timings.read_text())["counters"]
        assert counters["store_loads"] == 1
        assert "query_index_builds" not in counters
