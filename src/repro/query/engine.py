"""The batch query API: point-in-time prefix status lookups.

``QueryEngine.lookup(prefix, on=day)`` answers the paper's core join for
one prefix on one day — "was it DROP-listed, IRR-registered, ROA-covered,
RFC 6811-valid, and visible in BGP?" — from the immutable
:class:`~repro.query.index.QueryIndex`, in microseconds.  The answers
are definitionally identical to what the batch analyses compute from the
full archives (``tests/query`` pins that equivalence), just reachable
without loading a world.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import date
from typing import Iterable

from ..errors import ReproError
from ..net.prefix import IPv4Prefix
from ..net.timeline import parse_date
from ..rpki.tal import TalSet
from ..rpki.validation import RouteValidity, validate_route
from ..obs import Instrumentation
from ..synth.world import World
from .index import QueryIndex, load_or_build_index

__all__ = [
    "BatchParseError",
    "PrefixStatus",
    "QueryEngine",
    "parse_query_batch",
    "parse_query_line",
]


@dataclass(frozen=True, slots=True)
class PrefixStatus:
    """The unified point-in-time answer for one (prefix, day) pair."""

    prefix: IPv4Prefix
    on: date
    # DROP
    drop_listed: bool
    drop_entry: IPv4Prefix | None  # the most specific covering listing
    drop_sbl_id: str | None
    drop_since: date | None
    # IRR
    irr_registered: bool  # an active route object covers the prefix
    irr_exact: bool  # ... for exactly this prefix
    irr_origins: tuple[int, ...]
    # RPKI
    roa_covered: bool  # a trusted active ROA covers the prefix
    roa_asns: tuple[int, ...]
    rpki_validity: str | None  # RFC 6811 state of the announcement, or None
    # BGP
    announced: bool  # an exact-prefix route was active
    covered_by_route: bool  # ... or a covering less-specific was
    origins: tuple[int, ...]
    visible_peers: int  # full-table peers observing the exact prefix
    total_peers: int

    def to_dict(self) -> dict:
        """A JSON-able dict with stable field order (the wire format)."""
        return {
            "prefix": str(self.prefix),
            "on": self.on.isoformat(),
            "drop": {
                "listed": self.drop_listed,
                "entry": (
                    None if self.drop_entry is None else str(self.drop_entry)
                ),
                "sbl_id": self.drop_sbl_id,
                "since": (
                    None
                    if self.drop_since is None
                    else self.drop_since.isoformat()
                ),
            },
            "irr": {
                "registered": self.irr_registered,
                "exact": self.irr_exact,
                "origins": list(self.irr_origins),
            },
            "rpki": {
                "covered": self.roa_covered,
                "roa_asns": list(self.roa_asns),
                "validity": self.rpki_validity,
            },
            "bgp": {
                "announced": self.announced,
                "covered_by_route": self.covered_by_route,
                "origins": list(self.origins),
                "visible_peers": self.visible_peers,
                "total_peers": self.total_peers,
            },
        }


def parse_query_line(line: str, *, default_day: date) -> tuple[IPv4Prefix, date]:
    """Parse one batch input line: ``PREFIX`` or ``PREFIX DATE``."""
    parts = line.split()
    if not parts or len(parts) > 2:
        raise ValueError(
            f"bad query line {line!r} (expected 'PREFIX [DATE]')"
        )
    prefix = IPv4Prefix.parse(parts[0])
    day = parse_date(parts[1]) if len(parts) == 2 else default_day
    return prefix, day


class BatchParseError(ReproError, ValueError):
    """Every invalid input of one batch, reported together.

    ``errors`` holds ``(position, input, message)`` triples, zero-based
    in batch order, so a caller submitting hundreds of lines learns
    about all of them in one round trip instead of one per attempt.
    """

    code = "query.batch-parse"

    def __init__(self, errors: list[tuple[int, str, str]]) -> None:
        self.errors = list(errors)
        details = "; ".join(
            f"[{position}] {text!r}: {message}"
            for position, text, message in self.errors
        )
        count = len(self.errors)
        plural = "query" if count == 1 else "queries"
        super().__init__(f"{count} bad {plural}: {details}")


def parse_query_batch(
    lines: Iterable[str], *, default_day: date
) -> list[tuple[IPv4Prefix, date]]:
    """Parse a whole batch of query lines, validating all of them.

    Unlike looping over :func:`parse_query_line`, a bad line does not
    stop the scan: every invalid input is collected and raised as one
    :class:`BatchParseError` listing each offender with its position.
    """
    pairs: list[tuple[IPv4Prefix, date]] = []
    errors: list[tuple[int, str, str]] = []
    for position, line in enumerate(lines):
        try:
            pairs.append(parse_query_line(line, default_day=default_day))
        except ValueError as error:  # PrefixError is a ValueError
            errors.append((position, line, str(error)))
    if errors:
        raise BatchParseError(errors)
    return pairs


class QueryEngine:
    """Point-in-time lookups over one immutable :class:`QueryIndex`."""

    def __init__(
        self,
        index: QueryIndex,
        *,
        tals: TalSet | None = None,
        instrumentation: Instrumentation | None = None,
    ) -> None:
        self.index = index
        self.tals = tals or TalSet.default()
        self.instrumentation = instrumentation or Instrumentation()

    @classmethod
    def for_world(
        cls,
        world: World,
        *,
        directory=None,
        key: str = "",
        tals: TalSet | None = None,
        instrumentation: Instrumentation | None = None,
    ) -> "QueryEngine":
        """An engine for ``world``, reusing a persisted index if present."""
        index = load_or_build_index(
            world, directory, key=key, instrumentation=instrumentation
        )
        return cls(index, tals=tals, instrumentation=instrumentation)

    @property
    def default_day(self) -> date:
        """The day queries default to: the end of the data window."""
        return self.index.window.end

    # -- lookups -----------------------------------------------------------

    def lookup(self, prefix: IPv4Prefix, on: date | None = None) -> PrefixStatus:
        """The unified status of ``prefix`` on day ``on`` (window end
        when omitted)."""
        day = self.default_day if on is None else on
        self.instrumentation.incr("query_lookups")

        # DROP: the most specific listing covering the prefix on `day`.
        drop_entry = drop_sbl = drop_since = None
        for listing, bucket in reversed(self.index.drop.lookup_covering(prefix)):
            for episode in bucket:
                if episode.listed_on(day):
                    drop_entry = listing
                    drop_sbl = episode.sbl_id
                    drop_since = episode.added
                    break
            if drop_entry is not None:
                break

        # IRR: active route objects for the prefix or a covering one.
        irr_origins: set[int] = set()
        irr_exact = False
        for registered, bucket in self.index.irr.lookup_covering(prefix):
            for entry in bucket:
                if entry.active_on(day):
                    irr_origins.add(entry.origin)
                    if registered == prefix:
                        irr_exact = True

        # RPKI: trusted active ROAs covering the prefix.
        roas = [
            entry.roa(covering)
            for covering, bucket in self.index.roa.lookup_covering(prefix)
            for entry in bucket
            if entry.active_on(day)
            and self.tals.trusts(entry.trust_anchor)
        ]

        # BGP: exact announcements and covering reachability.
        origins: set[int] = set()
        observers: set[int] = set()
        exact_bucket = self.index.routes.get(prefix) or ()
        for route in exact_bucket:
            if route.active_on(day):
                origins.add(route.origin)
                observers.update(
                    route.observers_on(day, self.index.observer_sets)
                )
        announced = bool(origins)
        covered_by_route = announced or any(
            route.active_on(day)
            for _, bucket in self.index.routes.lookup_covering(prefix)
            for route in bucket
        )

        # RFC 6811 validity of the live announcement(s): VALID if any
        # origin is authorized, else INVALID when covered; unannounced
        # prefixes have no route to validate.
        validity: str | None = None
        if announced:
            states = {
                validate_route(prefix, origin, roas, self.tals)
                for origin in origins
            }
            if RouteValidity.VALID in states:
                validity = str(RouteValidity.VALID)
            elif RouteValidity.INVALID in states:
                validity = str(RouteValidity.INVALID)
            else:
                validity = str(RouteValidity.NOT_FOUND)

        return PrefixStatus(
            prefix=prefix,
            on=day,
            drop_listed=drop_entry is not None,
            drop_entry=drop_entry,
            drop_sbl_id=drop_sbl,
            drop_since=drop_since,
            irr_registered=bool(irr_origins),
            irr_exact=irr_exact,
            irr_origins=tuple(sorted(irr_origins)),
            roa_covered=bool(roas),
            roa_asns=tuple(sorted({roa.asn for roa in roas})),
            rpki_validity=validity,
            announced=announced,
            covered_by_route=covered_by_route,
            origins=tuple(sorted(origins)),
            visible_peers=len(observers),
            total_peers=self.index.total_peers,
        )

    def lookup_many(
        self,
        queries: Iterable[tuple[IPv4Prefix, date | None] | str],
        *,
        default_day: date | None = None,
    ) -> list[PrefixStatus]:
        """Vectorized batch: one status per query, in input order.

        Items are ``(prefix, day)`` pairs or raw ``"PREFIX [DATE]"``
        strings; strings are validated up front as one batch, so a
        request with several malformed inputs fails with a single
        :class:`BatchParseError` naming every offender and its position
        — not just the first.
        """
        day = self.default_day if default_day is None else default_day
        resolved: list[tuple[IPv4Prefix, date | None]] = []
        errors: list[tuple[int, str, str]] = []
        for position, item in enumerate(queries):
            if isinstance(item, str):
                try:
                    resolved.append(
                        parse_query_line(item, default_day=day)
                    )
                except ValueError as error:  # PrefixError included
                    errors.append((position, item, str(error)))
            else:
                resolved.append(item)
        if errors:
            raise BatchParseError(errors)
        with self.instrumentation.stage("lookup-many", group="query"):
            results = [self.lookup(prefix, on) for prefix, on in resolved]
        self.instrumentation.incr("query_batches")
        return results
