"""Tests for the repro-drop serve daemon (repro.query.server).

The server binds an ephemeral port on the loopback interface and runs on
a background thread; requests go through the real HTTP stack so what is
asserted is exactly what a curl user sees.  The acceptance-criteria test
lives here: ``/v1/status`` answers are identical to the batch API's for
the same (prefix, date) pairs.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.query import QueryEngine, QueryServer
from repro.query.http import API_VERSION, envelope
from repro.runtime import Instrumentation


@pytest.fixture(scope="module")
def server(index):
    instr = Instrumentation()
    srv = QueryServer(
        QueryEngine(index, instrumentation=instr), "127.0.0.1", 0
    )
    thread = threading.Thread(target=srv.serve_until_shutdown, daemon=True)
    thread.start()
    yield srv
    srv.shutdown()
    thread.join(timeout=10)
    assert not thread.is_alive()


def _get(server, path):
    host, port = server.server_address
    try:
        with urllib.request.urlopen(f"http://{host}:{port}{path}") as reply:
            return reply.status, json.loads(reply.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def _post(server, path, payload):
    host, port = server.server_address
    request = urllib.request.Request(
        f"http://{host}:{port}{path}",
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request) as reply:
            return reply.status, json.loads(reply.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


@pytest.fixture(scope="module")
def pairs(index):
    days = [index.window.start, index.window.end]
    prefixes = [p for i, p in enumerate(index.drop) if i % 101 == 0]
    prefixes += [p for i, p in enumerate(index.routes) if i % 501 == 0]
    return [(p, d) for p in prefixes for d in days]


class TestStatusEndpoint:
    def test_matches_batch_api(self, server, pairs):
        """Acceptance: /v1/status == QueryEngine.lookup for every pair."""
        engine = server.engine
        for prefix, day in pairs:
            status, body = _get(
                server, f"/v1/status?prefix={prefix}&on={day.isoformat()}"
            )
            assert status == 200
            assert body == envelope(engine.lookup(prefix, day).to_dict())

    def test_default_day(self, server, index):
        prefix = next(iter(index.routes))
        status, body = _get(server, f"/v1/status?prefix={prefix}")
        assert status == 200
        assert body["api"] == API_VERSION
        assert body["data"]["on"] == index.window.end.isoformat()

    def test_bad_prefix_is_400(self, server):
        status, body = _get(server, "/v1/status?prefix=999.1.2.3/8")
        assert status == 400
        assert body["api"] == API_VERSION
        assert body["error"]["code"] == "query.bad-prefix"

    def test_missing_prefix_is_400(self, server):
        status, body = _get(server, "/v1/status")
        assert status == 400
        assert body["error"]["message"] == "missing prefix"
        assert body["error"]["code"] == "query.bad-prefix"

    def test_bad_date_is_400(self, server, index):
        prefix = next(iter(index.routes))
        status, body = _get(
            server, f"/v1/status?prefix={prefix}&on=2021-02-30"
        )
        assert status == 400
        assert body["error"]["code"] == "query.bad-day"
        assert "invalid date" in body["error"]["message"]

    def test_unknown_path_is_404(self, server):
        assert _get(server, "/v1/nope")[0] == 404
        assert _post(server, "/v1/nope", {})[0] == 404


class TestBatchEndpoint:
    def test_matches_single_status(self, server, pairs):
        queries = [
            {"prefix": str(p), "on": d.isoformat()} for p, d in pairs
        ]
        status, body = _post(server, "/v1/batch", {"queries": queries})
        assert status == 200
        singles = [
            _get(server, f"/v1/status?prefix={p}&on={d.isoformat()}")[1]
            for p, d in pairs
        ]
        assert body["data"]["results"] == [s["data"] for s in singles]

    def test_bare_list_and_string_items(self, server, index):
        prefix = str(next(iter(index.routes)))
        status, body = _post(server, "/v1/batch", [prefix])
        assert status == 200
        results = body["data"]["results"]
        assert results[0]["prefix"] == prefix
        assert results[0]["on"] == index.window.end.isoformat()

    def test_empty_body_is_400(self, server):
        host, port = server.server_address
        request = urllib.request.Request(
            f"http://{host}:{port}/v1/batch", data=b""
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request)
        assert excinfo.value.code == 400

    def test_bad_json_is_400(self, server):
        host, port = server.server_address
        request = urllib.request.Request(
            f"http://{host}:{port}/v1/batch", data=b"{nope"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request)
        assert excinfo.value.code == 400

    def test_non_list_payload_is_400(self, server):
        assert _post(server, "/v1/batch", {"queries": "x"})[0] == 400
        assert _post(server, "/v1/batch", {"oops": []})[0] == 400

    def test_bad_item_is_400(self, server):
        assert _post(server, "/v1/batch", [42])[0] == 400

    def test_all_bad_items_reported_together(self, server, index):
        prefix = str(next(iter(index.routes)))
        status, body = _post(
            server,
            "/v1/batch",
            [prefix, "999.1.2.3/8", 42, {"prefix": prefix, "on": "nope"}],
        )
        assert status == 400
        assert body["error"]["code"] == "query.batch-parse"
        # One response names every offender with its batch position.
        assert "3 bad queries" in body["error"]["message"]
        for marker in ("[1]", "[2]", "[3]"):
            assert marker in body["error"]["message"]


class TestHealthz:
    def test_shape_and_counters(self, server, index):
        prefix = next(iter(index.routes))
        _get(server, f"/v1/status?prefix={prefix}")
        status, body = _get(server, "/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert body["window"] == [index.window.start.isoformat(),
                                  index.window.end.isoformat()]
        assert body["index"] == index.sizes()
        assert body["counters"]["serve_status_requests"] >= 1
        assert body["counters"]["serve_status_us_total"] >= 1

    def test_client_errors_counted(self, server):
        before = _get(server, "/healthz")[1]["counters"].get(
            "serve_client_errors", 0
        )
        _get(server, "/v1/status?prefix=bogus")
        after = _get(server, "/healthz")[1]["counters"]["serve_client_errors"]
        assert after == before + 1


def _get_text(server, path):
    host, port = server.server_address
    with urllib.request.urlopen(f"http://{host}:{port}{path}") as reply:
        return reply.status, reply.headers, reply.read().decode()


class TestMetrics:
    def test_prometheus_exposition(self, server, index):
        prefix = next(iter(index.routes))
        _get(server, f"/v1/status?prefix={prefix}")
        status, headers, body = _get_text(server, "/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain; version=0.0.4")
        # Exposition parses: every non-comment line is `name{labels} value`.
        for line in body.splitlines():
            if line.startswith("#"):
                continue
            name, value = line.rsplit(" ", 1)
            assert name.startswith("repro_")
            float(value)
        # Core series: cache and runner families are declared up front,
        # per-endpoint counters and the latency histogram from traffic.
        assert "# TYPE repro_cache_hits_total counter" in body
        assert "# TYPE repro_runner_worker_lost_total counter" in body
        assert 'repro_server_requests_total{endpoint="status"}' in body
        assert 'repro_server_request_seconds_bucket{endpoint="status"' in body
        assert 'repro_server_index_entries{store="drop_prefixes"} ' in body
        assert "repro_server_draining 0" in body

    def test_scrape_counts_itself(self, server):
        _get_text(server, "/metrics")
        body = _get_text(server, "/metrics")[2]
        assert 'repro_server_requests_total{endpoint="metrics"}' in body

    def test_health_endpoints_never_touch_the_engine(self, server):
        # /healthz and /metrics serve from the startup snapshot and the
        # registry; poisoning the engine proves no request reaches it.
        engine = self.__class__  # any non-engine object
        original, server.engine = server.engine, engine
        try:
            assert _get(server, "/healthz")[0] == 200
            assert _get_text(server, "/metrics")[0] == 200
        finally:
            server.engine = original


class TestDrainRefusals:
    def test_healthz_and_metrics_503_while_draining(self, index):
        instr = Instrumentation()
        srv = QueryServer(
            QueryEngine(index, instrumentation=instr), "127.0.0.1", 0
        )
        thread = threading.Thread(
            target=srv.serve_until_shutdown, daemon=True
        )
        thread.start()
        try:
            assert _get(srv, "/healthz")[0] == 200
            # The drain window, without the shutdown: flag only.
            srv._draining.set()
            srv._draining_gauge.set(1)
            status, body = _get(srv, "/healthz")
            assert status == 503 and body["status"] == "draining"
            host, port = srv.server_address
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(f"http://{host}:{port}/metrics")
            assert excinfo.value.code == 503
        finally:
            srv.shutdown()
            thread.join(timeout=10)
        assert not thread.is_alive()


class TestDrain:
    def test_shutdown_joins_cleanly(self, index):
        srv = QueryServer(QueryEngine(index), "127.0.0.1", 0)
        thread = threading.Thread(
            target=srv.serve_until_shutdown, daemon=True
        )
        thread.start()
        prefix = next(iter(index.routes))
        assert _get(srv, f"/v1/status?prefix={prefix}")[0] == 200
        srv._handle_signal(15, None)  # what SIGTERM runs, sans signal glue
        thread.join(timeout=10)
        assert not thread.is_alive()
        assert srv.instrumentation.counters["serve_drains"] == 1

    def test_drain_is_idempotent(self, index):
        srv = QueryServer(QueryEngine(index), "127.0.0.1", 0)
        thread = threading.Thread(
            target=srv.serve_until_shutdown, daemon=True
        )
        thread.start()
        srv._handle_signal(15, None)
        srv._handle_signal(2, None)
        thread.join(timeout=10)
        assert srv.instrumentation.counters["serve_drains"] == 1
