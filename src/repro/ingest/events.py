"""The watch surface's event model: what changed, who gets told.

Each applied :class:`~repro.ingest.delta.DeltaBatch` is evaluated into
:class:`WatchEvent` records — the live-monitoring product's currency:

* ``listed``      — a prefix entered the DROP list today;
* ``roa-expired`` — a ROA left the archive today (the Stalloris
  staleness signal: the prefix's RPKI protection just lapsed);
* ``hijack``      — a route announcement that conflicts with the
  *pre-delta* state, classified with :class:`~repro.bgp.alarms
  .AlarmKind` semantics: ``moas`` when another origin actively
  announces the exact prefix, ``subprefix`` when the new route is a
  more-specific of an active announcement by a different origin, and
  ``origin`` when trusted ROAs cover the prefix but none authorizes
  the new origin (RFC 6811 invalid).  ``path`` alarms need AS-path
  baselines the query index deliberately does not store, so the watch
  surface never emits them — :class:`~repro.bgp.alarms.HijackMonitor`
  over the raw store remains the offline path for those.

Events land in an :class:`EventLog` — a bounded, monotonically
sequenced ring the daemons' ``GET /v1/watch`` long-poll and SSE modes
read (clients resume with ``since=<last seq>``), with an optional
fire-and-forget :class:`WebhookPusher` for push delivery.
"""

from __future__ import annotations

import json
import threading
import urllib.request
from collections import deque
from dataclasses import dataclass, replace
from datetime import date

from ..bgp.alarms import AlarmKind
from ..net.prefix import IPv4Prefix
from ..obs import Instrumentation
from ..query.index import QueryIndex
from ..rpki.tal import TalSet
from .delta import DeltaBatch

__all__ = ["EventLog", "WatchEvent", "WebhookPusher", "evaluate_events"]


@dataclass(frozen=True, slots=True)
class WatchEvent:
    """One subscriber-visible change, as delivered on ``/v1/watch``."""

    seq: int
    kind: str  # "listed" | "roa-expired" | "hijack"
    day: date
    prefix: IPv4Prefix
    detail: str
    origin: int | None = None
    alarm: str | None = None  # AlarmKind value, hijack events only
    sbl_id: str | None = None  # listed events only

    def to_dict(self) -> dict:
        """The wire shape (uniform keys; see docs/api-contract.json)."""
        return {
            "seq": self.seq,
            "kind": self.kind,
            "day": self.day.isoformat(),
            "prefix": str(self.prefix),
            "detail": self.detail,
            "origin": self.origin,
            "alarm": self.alarm,
            "sbl_id": self.sbl_id,
        }


def evaluate_events(
    index: QueryIndex,
    batch: DeltaBatch,
    *,
    tals: TalSet | None = None,
) -> list[WatchEvent]:
    """The batch's subscriber-visible events, against pre-delta ``index``.

    The pre-delta state is what makes the hijack classification
    meaningful: "another origin was already announcing this" must not
    see the batch's own additions.  Sequence numbers are assigned at
    :meth:`EventLog.publish` time; here they are zero.
    """
    tals = tals or TalSet.default()
    day = batch.day
    events: list[WatchEvent] = []
    for prefix, sbl_id in batch.drop_added:
        events.append(
            WatchEvent(
                seq=0,
                kind="listed",
                day=day,
                prefix=prefix,
                detail="prefix entered the DROP list",
                sbl_id=sbl_id,
            )
        )
    for prefix, asn, max_length, anchor, _created in batch.roa_removed:
        events.append(
            WatchEvent(
                seq=0,
                kind="roa-expired",
                day=day,
                prefix=prefix,
                detail=f"ROA for AS{asn} left the {anchor} archive",
                origin=asn,
            )
        )
    for started in batch.route_started:
        event = _classify_hijack(index, started.prefix, started.origin,
                                 day, tals)
        if event is not None:
            events.append(event)
    return events


def _classify_hijack(
    index: QueryIndex,
    prefix: IPv4Prefix,
    origin: int,
    day: date,
    tals: TalSet,
) -> WatchEvent | None:
    """At most one hijack event for a new announcement, or None."""
    exact = index.routes.get(prefix) or ()
    if any(
        entry.active_on(day) and entry.origin != origin for entry in exact
    ):
        return WatchEvent(
            seq=0,
            kind="hijack",
            day=day,
            prefix=prefix,
            detail="second origin alongside an active announcement",
            origin=origin,
            alarm=AlarmKind.MOAS.value,
        )
    for covering, bucket in index.routes.lookup_covering(prefix):
        if covering == prefix:
            continue
        for entry in bucket:
            if entry.active_on(day) and entry.origin != origin:
                return WatchEvent(
                    seq=0,
                    kind="hijack",
                    day=day,
                    prefix=prefix,
                    detail=(
                        f"more-specific of {covering} "
                        f"(announced by AS{entry.origin})"
                    ),
                    origin=origin,
                    alarm=AlarmKind.SUBPREFIX.value,
                )
    covered = False
    for roa_prefix, bucket in index.roa.lookup_covering(prefix):
        for entry in bucket:
            if not entry.active_on(day):
                continue
            if not tals.trusts(entry.trust_anchor):
                continue
            covered = True
            if entry.roa(roa_prefix).authorizes(prefix, origin):
                return None
    if covered:
        return WatchEvent(
            seq=0,
            kind="hijack",
            day=day,
            prefix=prefix,
            detail="origin not authorized by any covering ROA",
            origin=origin,
            alarm=AlarmKind.ORIGIN.value,
        )
    return None


class EventLog:
    """A bounded, monotonically sequenced event ring with blocking reads.

    ``publish`` assigns sequence numbers under the lock and wakes every
    waiter; ``since(seq)`` returns the retained events after ``seq``
    (clients that fell more than ``maxlen`` events behind silently
    resume from the oldest retained — the ring is a live feed, not a
    durable log; the delta journal is the durable record).
    """

    def __init__(self, *, maxlen: int = 1024) -> None:
        self._cond = threading.Condition()
        self._events: deque[WatchEvent] = deque(maxlen=maxlen)
        self._seq = 0

    @property
    def last_seq(self) -> int:
        """The newest assigned sequence number (0 = nothing yet)."""
        with self._cond:
            return self._seq

    def publish(self, events: list[WatchEvent]) -> list[WatchEvent]:
        """Assign sequence numbers, retain, wake waiters; returns them."""
        if not events:
            return []
        with self._cond:
            stamped = []
            for event in events:
                self._seq += 1
                stamped.append(replace(event, seq=self._seq))
            self._events.extend(stamped)
            self._cond.notify_all()
        return stamped

    def since(self, seq: int) -> list[WatchEvent]:
        """Retained events with sequence numbers after ``seq``."""
        with self._cond:
            return [e for e in self._events if e.seq > seq]

    def wait_since(self, seq: int, timeout: float) -> list[WatchEvent]:
        """``since(seq)``, blocking up to ``timeout`` seconds for news."""
        with self._cond:
            self._cond.wait_for(
                lambda: self._seq > seq and any(
                    e.seq > seq for e in self._events
                ),
                timeout=timeout,
            )
            return [e for e in self._events if e.seq > seq]


class WebhookPusher:
    """Fire-and-forget push delivery of published events.

    Each batch of events POSTs to ``url`` as the same envelope the
    ``/v1/watch`` JSON mode serves, from a daemon thread so a slow or
    dead receiver never blocks the ingest path.  Failures count
    (``ingest_webhook_errors``) and are otherwise dropped — the event
    log remains the recoverable surface.
    """

    def __init__(
        self,
        url: str,
        *,
        instrumentation: Instrumentation | None = None,
        timeout: float = 5.0,
    ) -> None:
        self.url = url
        self.timeout = timeout
        self.instrumentation = instrumentation or Instrumentation()

    def push(self, events: list[WatchEvent]) -> threading.Thread | None:
        """Deliver asynchronously; returns the thread (tests join it)."""
        if not events:
            return None
        body = json.dumps(
            {"api": 1, "data": {"events": [e.to_dict() for e in events]}},
            sort_keys=True,
        ).encode("utf-8")
        thread = threading.Thread(
            target=self._deliver, args=(body,), daemon=True
        )
        thread.start()
        return thread

    def _deliver(self, body: bytes) -> None:
        request = urllib.request.Request(
            self.url,
            data=body,
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout):
                pass
        except Exception:
            self.instrumentation.incr("ingest_webhook_errors")
        else:
            self.instrumentation.incr("ingest_webhook_pushes")
