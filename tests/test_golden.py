"""Golden regression tests: the tiny-scale markdown report, byte for byte.

``tests/golden/markdown_tiny.md`` is the checked-in output of
``repro-drop markdown --scale tiny``.  Serial, parallel (``--jobs 4``),
and cache-hit runs must all reproduce it exactly — the safety net that
makes the runtime subsystem safe to ship.  Regenerate deliberately with::

    PYTHONPATH=src python -m repro.cli markdown --scale tiny \
        > tests/golden/markdown_tiny.md
"""

import json
from pathlib import Path

import pytest

from repro.cli import main

GOLDEN = Path(__file__).parent / "golden" / "markdown_tiny.md"


@pytest.fixture()
def golden_text():
    return GOLDEN.read_text()


def _markdown(capsys, *extra_args):
    assert main(["markdown", "--scale", "tiny", *extra_args]) == 0
    return capsys.readouterr().out


class TestGoldenMarkdown:
    def test_serial_matches_golden(self, capsys, golden_text):
        assert _markdown(capsys, "--no-cache") == golden_text

    def test_parallel_matches_golden(self, capsys, golden_text, tmp_path):
        out = _markdown(
            capsys, "--jobs", "4", "--cache-dir", str(tmp_path)
        )
        assert out == golden_text

    def test_cache_hit_matches_golden(self, capsys, golden_text, tmp_path):
        timings = tmp_path / "timings.json"
        args = ("--cache-dir", str(tmp_path), "--timings-out", str(timings))

        first = _markdown(capsys, *args)
        cold = json.loads(timings.read_text())
        assert cold["info"]["world_cache"]["status"] == "miss"
        assert cold["counters"].get("world_cache_misses") == 1

        second = _markdown(capsys, *args)
        warm = json.loads(timings.read_text())
        assert warm["info"]["world_cache"]["status"] == "hit"
        assert warm["counters"].get("world_cache_hits") == 1

        assert first == golden_text
        assert second == golden_text

    def test_report_all_parallel_runs_every_experiment(
        self, capsys, tmp_path
    ):
        timings = tmp_path / "timings.json"
        assert main([
            "report", "--all", "--scale", "tiny", "--jobs", "4",
            "--cache-dir", str(tmp_path), "--timings-out", str(timings),
        ]) == 0
        out = capsys.readouterr().out
        assert "== fig1:" in out and "== ext-survival:" in out
        payload = json.loads(timings.read_text())
        experiment_stages = payload["stages"]["experiment"]
        assert [s["name"] for s in experiment_stages] == payload["info"][
            "experiment_ids"
        ]
        assert all(s["seconds"] >= 0 for s in experiment_stages)

    def test_binary_store_matches_json_path(self, capsys, golden_text, tmp_path):
        """Full-report golden gate for the binary world store: a run
        served from the ``.bin`` sidecars and a run forced onto the JSON
        compatibility path print the identical report, byte for byte."""
        args = ("--cache-dir", str(tmp_path))
        cold = _markdown(capsys, *args)  # build + persist both formats
        from_binary = _markdown(capsys, *args)  # warm: mmap store path
        sidecars = list(tmp_path.rglob("*.bin"))
        assert sidecars, "warm run persisted no binary store files"
        for path in sidecars:
            path.unlink()
        from_json = _markdown(capsys, *args)  # warm: JSON fallback path
        assert cold == golden_text
        assert from_binary == golden_text
        assert from_json == golden_text
