"""Tests for repro.query.index: build, persist, verify, evict, rebuild."""

import json

import pytest

from repro.query import (
    INDEX_FILENAME,
    IndexLoadError,
    build_index,
    load_index,
    load_or_build_index,
    save_index,
)
from repro.runtime import Instrumentation, injected
from repro.store.index import STORE_INDEX_FILENAME
from repro.synth.builder import GENERATOR_VERSION


class TestBuild:
    def test_sizes_match_world(self, index, world):
        sizes = index.sizes()
        assert sizes["drop_prefixes"] == len(world.drop.unique_prefixes())
        assert sizes["route_prefixes"] == sum(
            1 for _ in world.bgp.prefixes()
        )
        assert sizes["irr_prefixes"] > 0
        assert sizes["roa_prefixes"] > 0

    def test_total_peers_is_full_table_count(self, index, world):
        assert index.total_peers == len(world.peers.full_table_peer_ids())

    def test_observer_sets_are_interned(self, index):
        # Interning only stores distinct sets, so the table is (much)
        # smaller than the number of route entries referencing it.
        assert 0 < len(index.observer_sets) < len(index.routes)
        refs = {
            entry.observers_ref
            for _, bucket in index.routes.items()
            for entry in bucket
        }
        assert refs <= set(range(len(index.observer_sets)))

    def test_header_defaults(self, index, world, stored):
        assert index.window == world.window
        assert index.key == stored.key
        assert index.generator == GENERATOR_VERSION

    def test_build_counter(self, world):
        instr = Instrumentation()
        build_index(world, instrumentation=instr)
        assert instr.counters["query_index_builds"] == 1


class TestRoundTrip:
    @pytest.fixture()
    def saved_dir(self, index, tmp_path):
        assert save_index(index, tmp_path) == tmp_path / INDEX_FILENAME
        return tmp_path

    def test_loaded_index_is_equal(self, index, saved_dir):
        loaded = load_index(saved_dir, expected_key=index.key)
        assert loaded.window == index.window
        assert loaded.total_peers == index.total_peers
        assert loaded.observer_sets == index.observer_sets
        for name in ("drop", "irr", "roa", "routes"):
            original = getattr(index, name)
            restored = getattr(loaded, name)
            assert len(restored) == len(original)
            for prefix, bucket in original.items():
                assert restored.get(prefix) == bucket

    def test_save_then_load_counters(self, index, tmp_path):
        instr = Instrumentation()
        save_index(index, tmp_path, instrumentation=instr)
        load_index(tmp_path, expected_key="", instrumentation=instr)
        assert instr.counters["query_index_stores"] == 1
        assert instr.counters["query_index_loads"] == 1

    def test_no_staging_files_left_behind(self, saved_dir):
        assert sorted(p.name for p in saved_dir.iterdir()) == sorted(
            [STORE_INDEX_FILENAME, INDEX_FILENAME]
        )


class TestHeaderVerification:
    @pytest.fixture()
    def saved_dir(self, index, tmp_path):
        save_index(index, tmp_path)
        return tmp_path

    def _tamper(self, directory, **fields):
        path = directory / INDEX_FILENAME
        raw = json.loads(path.read_text())
        raw.update(fields)
        path.write_text(json.dumps(raw))

    def test_wrong_format_rejected(self, saved_dir, index):
        self._tamper(saved_dir, format=999)
        with pytest.raises(IndexLoadError, match="format"):
            load_index(saved_dir, expected_key=index.key)

    def test_wrong_generator_rejected(self, saved_dir, index):
        self._tamper(saved_dir, generator="somebody-else")
        with pytest.raises(IndexLoadError, match="generator"):
            load_index(saved_dir, expected_key=index.key)

    def test_foreign_key_rejected(self, saved_dir):
        with pytest.raises(IndexLoadError, match="key"):
            load_index(saved_dir, expected_key="deadbeef00000000")

    def test_empty_expected_key_skips_check(self, saved_dir):
        assert load_index(saved_dir, expected_key="").total_peers > 0

    def test_missing_file_raises(self, tmp_path, index):
        with pytest.raises(OSError):
            load_index(tmp_path, expected_key=index.key)


class TestEvictionAndRecovery:
    def test_torn_file_is_evicted_and_rebuilt(self, world, stored, tmp_path):
        save_index(build_index(world, key=stored.key), tmp_path)
        # Tear both persisted layers: the preferred binary store and
        # the JSON fallback behind it.
        for name in (STORE_INDEX_FILENAME, INDEX_FILENAME):
            path = tmp_path / name
            path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
        instr = Instrumentation()
        rebuilt = load_or_build_index(
            world, tmp_path, key=stored.key, instrumentation=instr
        )
        assert instr.counters["query_index_evictions"] == 1
        assert instr.counters["query_index_builds"] == 1
        assert rebuilt.sizes() == build_index(world).sizes()
        # ... and the healthy replacement was re-persisted.
        assert instr.counters["query_index_stores"] == 1
        assert load_index(tmp_path, expected_key=stored.key).sizes() == \
            rebuilt.sizes()

    def test_load_fault_is_evicted_and_rebuilt(self, world, stored, tmp_path):
        """Injected load faults on both layers are survived silently."""
        save_index(build_index(world, key=stored.key), tmp_path)
        instr = Instrumentation()
        with injected("truncate@store.load,truncate@query.index.load"):
            index = load_or_build_index(
                world, tmp_path, key=stored.key, instrumentation=instr
            )
        assert instr.counters["store_evictions"] == 1
        assert instr.counters["query_index_evictions"] == 1
        assert index.sizes() == build_index(world).sizes()

    def test_save_fault_degrades_to_unpersisted(self, index, tmp_path):
        instr = Instrumentation()
        with injected("io-error@query.index.save"):
            with pytest.warns(RuntimeWarning, match="index store failed"):
                assert save_index(
                    index, tmp_path, instrumentation=instr
                ) is None
        assert instr.counters["query_index_store_errors"] == 1
        assert not (tmp_path / INDEX_FILENAME).exists()

    def test_no_directory_builds_in_memory(self, world):
        instr = Instrumentation()
        built = load_or_build_index(world, None, instrumentation=instr)
        assert built.sizes()["route_prefixes"] > 0
        assert "query_index_stores" not in instr.counters
