"""The sweep engine: fan scenario cells across the parallel runner.

Each cell is one scenario fetched through the scenario cache
(:meth:`~repro.runtime.cache.WorldCache.fetch_scenario`) and scored
with :func:`~repro.scenarios.metrics.evaluate_scenario` — so a cell
that already ran is a cache hit and a resumed sweep builds zero
worlds.  Before any cell runs, the engine groups the grid by base
cache key and prefetches each distinct base snapshot once
(:meth:`~repro.runtime.cache.WorldCache.fetch_base`): cold cells then
pay only for their overlay fork, not a full world build.  A warm cell
goes further and skips the world load entirely — the truth sidecar
plus the persisted query index answer
:func:`~repro.scenarios.metrics.evaluate_scenario_from_index` with
byte-equal metrics.

Cells run via :func:`~repro.runtime.runner.parallel_map`, inheriting
its worker-loss recovery: a dying worker (OOM kill, injected
``crash@sweep.cell:*``) breaks the pool and the whole map re-runs
serially in the parent, costing wall time but never results.

Failures are per-cell, not per-sweep: a cell that raises is reported
with its failure kind while the other cells complete, and the CLI
turns "some cells failed" into exit 3 (degraded) with the kinds on
stderr.  Fault sites: ``sweep.plan`` (grid expansion),
``sweep.cell:<name>`` (inside the worker, before the fetch),
``sweep.collect`` (result merge in the parent); base prefetch rides
the ``base.*`` sites documented in :mod:`repro.runtime.faults`.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from pathlib import Path

from ..errors import CacheCorruptionError
from ..obs import Instrumentation
from ..query.index import load_or_build_index, load_persisted_index
from ..runtime import faults
from ..runtime.cache import (
    WorldCache,
    base_cache_key,
    default_cache_root,
    scenario_cache_key,
)
from ..runtime.faults import fault_point
from ..runtime.runner import parallel_map
from ..scenarios.compose import ScenarioTruth
from ..scenarios.metrics import evaluate_scenario, evaluate_scenario_from_index
from ..scenarios.spec import Scenario
from .report import sweep_report
from .spec import SweepSpec

__all__ = ["CellResult", "SweepOutcome", "run_sweep"]


@dataclass(frozen=True, slots=True)
class CellResult:
    """One sweep cell's outcome (ok or failed)."""

    name: str
    family: str
    #: Axis values: ``{"rov": p, "drop": q, "route_server": r}``.
    axes: dict
    #: ``"ok"`` or ``"failed"``.
    status: str
    #: Failure kind: a :class:`~repro.errors.ReproError` code or the
    #: exception class name; None for ok cells.
    kind: str | None
    error: str | None
    #: Cache resolution (``hit``/``miss``/``refresh``); None on failure.
    cache_status: str | None
    #: Scenario cache key; None on failure before key derivation.
    key: str | None
    seconds: float
    #: :func:`evaluate_scenario` output; None on failure.
    metrics: dict | None


@dataclass(frozen=True, slots=True)
class SweepOutcome:
    """A finished sweep: per-cell results plus the comparative report."""

    spec: SweepSpec
    cells: tuple[CellResult, ...]
    report: dict

    @property
    def failed(self) -> tuple[CellResult, ...]:
        return tuple(c for c in self.cells if c.status != "ok")

    @property
    def worlds_built(self) -> int:
        """Cells resolved by building (cache misses + forced rebuilds)."""
        return sum(
            1 for c in self.cells if c.cache_status in ("miss", "refresh")
        )


def _mark_if_child(parent_pid: int) -> None:
    """Pool initializer: mark real workers for in-worker-only faults.

    ``parallel_map`` runs the initializer in the *parent* on its serial
    and broken-pool fallback paths — marking there would let ``crash``
    faults kill the whole run instead of one worker, so mark only when
    the pid differs.
    """
    if os.getpid() != parent_pid:
        faults.mark_worker_process()


def _fast_path_metrics(
    cache: WorldCache, scenario, key: str, instr: Instrumentation
) -> dict | None:
    """Warm-cell metrics without a world load, or None to take the
    full path.

    A hit needs both the spec-checked truth sidecar and a trustworthy
    persisted query index in the entry; anything torn or missing falls
    back to :meth:`~repro.runtime.cache.WorldCache.fetch_scenario`,
    whose own eviction discipline handles the cleanup.
    """
    directory = cache.root / "scenarios" / key
    if not directory.exists():
        return None
    try:
        truth = WorldCache._load_scenario_truth(
            directory, scenario, ScenarioTruth
        )
    except CacheCorruptionError:
        return None
    index = load_persisted_index(
        directory, expected_key=key, instrumentation=instr
    )
    if index is None:
        return None
    return evaluate_scenario_from_index(index, truth)


def _run_cell(task: tuple) -> dict:
    """One cell, in a worker: fetch through the cache and evaluate.

    Module-level and dict-in/dict-out so it crosses the process pool;
    the worker's counters ride along for the parent to merge.  Warm
    cells resolve from the truth sidecar + persisted index alone; a
    miss forks the (prefetched) base, evaluates the world, and
    persists the index so the next run takes the fast path.
    """
    name, family, axes, scenario_json, cache_root, refresh = task
    started = time.perf_counter()
    instr = Instrumentation()
    doc = {
        "name": name,
        "family": family,
        "axes": axes,
        "status": "failed",
        "kind": None,
        "error": None,
        "cache_status": None,
        "key": None,
        "metrics": None,
        "counters": {},
    }
    try:
        fault_point(f"sweep.cell:{name}", instrumentation=instr)
        scenario = Scenario.from_json(scenario_json)
        cache = WorldCache(Path(cache_root))
        metrics = None
        if not refresh:
            key = scenario_cache_key(scenario)
            metrics = _fast_path_metrics(cache, scenario, key, instr)
            if metrics is not None:
                doc["cache_status"] = "hit"
                doc["key"] = key
                instr.incr("scenario_cache_hits")
                instr.incr("sweep_fast_path_hits")
        if metrics is None:
            outcome = cache.fetch_scenario(
                scenario, instrumentation=instr, refresh=refresh
            )
            doc["cache_status"] = outcome.status
            doc["key"] = outcome.key
            metrics = evaluate_scenario(outcome.world, outcome.truth)
            if outcome.directory.exists():
                # Best-effort: persist the query index next to the entry
                # so the next warm run never loads the world.  A store
                # failure costs only future speed.
                try:
                    load_or_build_index(
                        outcome.world,
                        outcome.directory,
                        key=outcome.key,
                        instrumentation=instr,
                    )
                except Exception:
                    pass
        doc["metrics"] = metrics
        doc["status"] = "ok"
    except Exception as error:
        doc["kind"] = getattr(error, "code", None) or type(error).__name__
        doc["error"] = str(error)
    doc["seconds"] = round(time.perf_counter() - started, 6)
    doc["counters"] = dict(instr.counters)
    return doc


def _prefetch_base(task: tuple) -> dict:
    """Warm one base snapshot entry, in a worker (best-effort).

    Failures are swallowed: a cell whose base could not be prefetched
    builds it itself through the ordinary miss path.
    """
    base_json, cache_root, jobs = task
    instr = Instrumentation()
    doc = {"ok": True, "error": None, "counters": {}}
    try:
        from ..scenarios.spec import WorldScale

        base = WorldScale(**base_json)
        WorldCache(Path(cache_root)).fetch_base(
            base, instrumentation=instr, jobs=jobs
        )
    except Exception as error:
        doc["ok"] = False
        doc["error"] = str(error)
    doc["counters"] = dict(instr.counters)
    return doc


def run_sweep(
    spec: SweepSpec,
    *,
    jobs: int = 1,
    cache_root: Path | None = None,
    refresh: bool = False,
    instrumentation: Instrumentation | None = None,
) -> SweepOutcome:
    """Run every cell of ``spec`` and assemble the comparative report.

    ``jobs`` fans cells across worker processes; results come back in
    grid order regardless.  Worker counters are merged into
    ``instrumentation`` so cache hit/miss/build totals (and therefore
    degraded-run detection) see the whole sweep.
    """
    instr = instrumentation or Instrumentation()
    root = Path(cache_root) if cache_root is not None else default_cache_root()
    with instr.stage("sweep-plan", group="sweep"):
        fault_point("sweep.plan", instrumentation=instr)
        cells = spec.cells()
    axis_names = {
        "rov": "rov",
        "drop-subscription": "drop",
        "route-server": "route_server",
    }
    tasks = [
        (
            name,
            scenario.attacks[0].family,
            {axis_names[d.kind]: d.rate for d in scenario.defenses},
            scenario.to_json(),
            str(root),
            refresh,
        )
        for name, scenario in cells
    ]

    # Prefetch each distinct base snapshot exactly once, before any cell
    # runs: cold cells then fork the shared base instead of rebuilding
    # the world from scratch.  Only bases some cell will actually miss
    # on are fetched — a fully warm sweep touches no base at all.
    # Best-effort — a failed prefetch just means the cells build their
    # own base through the miss path.
    bases: dict[str, object] = {}
    for _, scenario in cells:
        entry = root / "scenarios" / scenario_cache_key(scenario)
        if refresh or not entry.exists():
            bases.setdefault(base_cache_key(scenario.base), scenario.base)
    bases_before = instr.counters.get("base_cache_misses", 0)
    base_started = time.perf_counter()
    with instr.stage("sweep-bases", group="sweep"):
        if len(bases) == 1:
            # A single base gets the whole job budget for its sharded
            # build (the common case: SweepSpec is one scale + seed).
            try:
                WorldCache(root).fetch_base(
                    next(iter(bases.values())),
                    instrumentation=instr,
                    jobs=jobs,
                )
            except Exception as error:
                instr.warn(f"base prefetch failed ({error}); cells rebuild")
        elif bases:
            prefetch_tasks = [
                ({"scale": base.scale, "seed": base.seed}, str(root), 1)
                for base in bases.values()
            ]
            for doc in parallel_map(
                _prefetch_base,
                prefetch_tasks,
                jobs=min(jobs, len(bases)),
                initializer=_mark_if_child,
                initargs=(os.getpid(),),
            ):
                for counter, amount in doc["counters"].items():
                    instr.incr(counter, amount)
                if not doc["ok"]:
                    instr.warn(
                        f"base prefetch failed ({doc['error']}); "
                        f"cells rebuild"
                    )
    base_seconds = time.perf_counter() - base_started

    with instr.stage("sweep-run", group="sweep"):
        raw = parallel_map(
            _run_cell,
            tasks,
            jobs=jobs,
            initializer=_mark_if_child,
            initargs=(os.getpid(),),
        )
    with instr.stage("sweep-collect", group="sweep"):
        fault_point("sweep.collect", instrumentation=instr)
        results: list[CellResult] = []
        for doc in raw:
            for counter, amount in doc["counters"].items():
                instr.incr(counter, amount)
            result = CellResult(
                name=doc["name"],
                family=doc["family"],
                axes=doc["axes"],
                status=doc["status"],
                kind=doc["kind"],
                error=doc["error"],
                cache_status=doc["cache_status"],
                key=doc["key"],
                seconds=doc["seconds"],
                metrics=doc["metrics"],
            )
            results.append(result)
            if result.status == "ok":
                instr.incr("sweep_cells_ok")
            else:
                instr.incr("sweep_cells_failed")
            # Counted outside the ok branch so the counter agrees with
            # :attr:`SweepOutcome.worlds_built`: a cell that built its
            # world and then failed evaluation still built a world.
            if result.cache_status in ("miss", "refresh"):
                instr.incr("sweep_worlds_built")
        bases_built = (
            instr.counters.get("base_cache_misses", 0) - bases_before
        )
        if bases_built:
            instr.incr("sweep_bases_built", bases_built)
        report = sweep_report(
            spec,
            results,
            bases_built=bases_built,
            base_seconds=round(base_seconds, 6),
        )
    return SweepOutcome(spec=spec, cells=tuple(results), report=report)
