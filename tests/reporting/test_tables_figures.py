"""Unit tests for repro.reporting.tables and figures."""

from datetime import date

import pytest

from repro.reporting.figures import (
    ascii_cdf,
    ascii_series,
    ascii_timeline,
    cdf_points,
)
from repro.reporting.tables import TextTable


class TestTextTable:
    def test_render_alignment(self):
        table = TextTable(["name", "count"])
        table.add_row("alpha", 1)
        table.add_row("bb", 22)
        text = table.render()
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert lines[1].startswith("-")
        # Numeric column right-aligned: the widths line up.
        assert lines[2].endswith("1")
        assert lines[3].endswith("22")

    def test_float_precision(self):
        table = TextTable(["x"], float_precision=2)
        table.add_row(0.12345)
        assert "0.12" in table.render()

    def test_none_rendered_as_dash(self):
        table = TextTable(["a", "b"])
        table.add_row("x", None)
        assert table.render().splitlines()[-1].rstrip().endswith("-")

    def test_wrong_arity_rejected(self):
        table = TextTable(["a", "b"])
        with pytest.raises(ValueError):
            table.add_row("only one")

    def test_len(self):
        table = TextTable(["a"])
        assert len(table) == 0
        table.add_row(1)
        assert len(table) == 1

    def test_empty_table_renders_headers(self):
        table = TextTable(["alpha", "beta"])
        text = table.render()
        assert "alpha" in text and "beta" in text


class TestCdfPoints:
    def test_points_sorted_and_normalized(self):
        points = cdf_points([3.0, 1.0, 2.0])
        assert [v for v, _ in points] == [1.0, 2.0, 3.0]
        assert points[-1][1] == 1.0
        assert points[0][1] == pytest.approx(1 / 3)


class TestAsciiRenderers:
    def test_cdf_shape(self):
        text = ascii_cdf([0.0, 0.5, 1.0], label="test cdf")
        assert text.startswith("test cdf")
        assert "*" in text
        assert "1.00 |" in text

    def test_cdf_empty(self):
        assert "(no data)" in ascii_cdf([], label="empty")

    def test_cdf_constant_values(self):
        text = ascii_cdf([5.0, 5.0, 5.0])
        assert "*" in text

    def test_series_shape(self):
        series = [
            (date(2020, 1, 1), 1.0),
            (date(2020, 6, 1), 2.0),
            (date(2021, 1, 1), 3.0),
        ]
        text = ascii_series(series, label="growth")
        assert text.startswith("growth")
        assert "2020-01-01" in text
        assert "2021-01-01" in text

    def test_series_empty(self):
        assert "(no data)" in ascii_series([], label="empty")

    def test_timeline_markers_sorted(self):
        text = ascii_timeline(
            [(date(2021, 1, 1), "event B"), (date(2020, 1, 1), "event A")],
            markers=[(date(2020, 6, 1), "policy")],
        )
        lines = text.splitlines()
        assert "event A" in lines[0]
        assert lines[1].startswith("==")
        assert "event B" in lines[2]
