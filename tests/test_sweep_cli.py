"""`repro-drop sweep` CLI tests: exit-code policy, resume, faults.

Exit policy under test: 0 clean, 1 every cell failed (or the sweep
itself died at plan/collect), 2 bad invocation, 3 some cells failed —
with per-cell failure kinds on stderr.

The axis flags below expand to the same two cells as the engine
tests' spec, so these runs resolve against the session cache.
"""

import json

import pytest

from repro.cli import ExitCode, main
from repro.runtime import faults

ARGS = [
    "sweep",
    "--family",
    "prefix-hijack",
    "--attack-count",
    "1",
    "--rov-rates",
    "0,0.6",
]


class TestHappyPath:
    def test_run_then_resume_builds_zero_worlds(self, tmp_path, capsys):
        out = tmp_path / "report.json"
        assert main(ARGS + ["--out", str(out)]) == ExitCode.OK
        stdout = capsys.readouterr().out
        assert "2/2 cells ok" in stdout
        first = json.loads(out.read_text())
        assert first["cells_ok"] == 2

        assert (
            main(ARGS + ["--out", str(out), "--format", "json"])
            == ExitCode.OK
        )
        resumed = json.loads(capsys.readouterr().out)
        assert resumed == json.loads(out.read_text())
        assert resumed["worlds_built"] == 0
        assert [c["cache_status"] for c in resumed["cells"]] == [
            "hit",
            "hit",
        ]
        curve = resumed["families"]["prefix-hijack"]["curves"]["rov"]
        assert [point["rate"] for point in curve] == [0.0, 0.6]

    def test_spec_file_wins_over_axis_flags(self, tmp_path, capsys):
        from repro.sweep import SweepSpec

        spec = SweepSpec(
            name="from-file",
            families=("prefix-hijack",),
            attack_count=1,
            rov_rates=(0.0, 0.6),
        )
        path = tmp_path / "spec.json"
        path.write_text(spec.to_json())
        rc = main(
            [
                "sweep",
                "--spec",
                str(path),
                "--name",
                "ignored",
                "--format",
                "json",
            ]
        )
        assert rc == ExitCode.OK
        report = json.loads(capsys.readouterr().out)
        assert report["name"] == "from-file"


class TestFailurePolicy:
    def test_some_cells_failed_exits_degraded(self, capsys):
        with faults.injected("io-error@sweep.cell:*"):
            rc = main(ARGS)
        assert rc == ExitCode.DEGRADED
        err = capsys.readouterr().err
        assert "failed (InjectedIOError)" in err
        assert "sweep degraded: 1/2 cells failed" in err

    def test_all_cells_failed_exits_failure(self, capsys):
        with faults.injected("io-error@sweep.cell:**2"):
            rc = main(ARGS)
        assert rc == ExitCode.FAILURE
        assert "every cell failed" in capsys.readouterr().err

    def test_plan_fault_exits_failure(self, capsys):
        with faults.injected("io-error@sweep.plan"):
            rc = main(ARGS)
        assert rc == ExitCode.FAILURE
        assert "sweep failed" in capsys.readouterr().err

    def test_ambient_env_fault_hits_the_named_cell(
        self, monkeypatch, capsys
    ):
        # The ambient $REPRO_FAULTS path, scoped to one cell by name.
        monkeypatch.setenv(
            "REPRO_FAULTS", "io-error@sweep.cell:prefix-hijack/rov0.6*"
        )
        rc = main(ARGS)
        assert rc == ExitCode.DEGRADED
        err = capsys.readouterr().err
        assert "cell prefix-hijack/rov0.6/drop0/rs0 failed" in err

    def test_crashed_workers_recover_to_a_clean_exit(
        self, monkeypatch, capsys
    ):
        # Workers die, the pool breaks, the parent finishes serially.
        monkeypatch.setenv("REPRO_FAULTS", "crash@sweep.cell:**3")
        rc = main(ARGS + ["--jobs", "2", "--format", "json"])
        assert rc == ExitCode.OK
        report = json.loads(capsys.readouterr().out)
        assert report["cells_failed"] == 0


class TestUsageErrors:
    def test_rate_out_of_range_is_a_usage_error(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["sweep", "--rov-rates", "0,2"])
        assert excinfo.value.code == 2

    def test_bad_spec_file_is_a_usage_error(self, tmp_path, capsys):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps({"surprise": 1}))
        assert main(["sweep", "--spec", str(path)]) == ExitCode.USAGE
        assert "error:" in capsys.readouterr().err

    def test_missing_spec_file_is_a_usage_error(self, tmp_path, capsys):
        missing = tmp_path / "nope.json"
        assert main(["sweep", "--spec", str(missing)]) == ExitCode.USAGE
        assert "error:" in capsys.readouterr().err

    def test_unknown_family_is_a_usage_error(self, capsys):
        rc = main(["sweep", "--family", "quantum-hijack"])
        assert rc == ExitCode.USAGE
        assert "quantum-hijack" in capsys.readouterr().err
