"""The binary query-index store: parity, pins, eviction, degradation."""

import json

import pytest

from repro.obs import Instrumentation
from repro.query import (
    INDEX_FILENAME,
    IndexLoadError,
    QueryEngine,
    load_persisted_index,
)
from repro.runtime.faults import injected
from repro.store.index import (
    STORE_INDEX_FILENAME,
    load_store_index,
    save_store_index,
)
from repro.store.substrate import encode_substrate


@pytest.fixture(scope="module")
def saved_dir(index, tmp_path_factory):
    directory = tmp_path_factory.mktemp("store-index")
    assert save_store_index(index, directory) is not None
    return directory


@pytest.fixture(scope="module")
def view(saved_dir, index):
    return load_store_index(saved_dir, expected_key=index.key)


def _sample_prefixes(index):
    prefixes = [p for i, p in enumerate(index.drop) if i % 37 == 0]
    prefixes += [p for i, p in enumerate(index.routes) if i % 211 == 0]
    prefixes += [p for i, p in enumerate(index.roa) if i % 97 == 0]
    return prefixes


class TestParity:
    def test_scalars(self, view, index):
        assert view.window == index.window
        assert view.total_peers == index.total_peers
        assert view.key == index.key
        assert view.generator == index.generator
        assert view.sizes() == index.sizes()

    @pytest.mark.parametrize("table", ["drop", "irr", "roa", "routes"])
    def test_full_table_walk(self, view, index, table):
        original = list(getattr(index, table).items())
        restored = list(getattr(view, table).items())
        # The trie's pre-order walk IS sorted (network, length) order,
        # so the two iterations agree element for element.
        assert [p for p, _ in original] == [p for p, _ in restored]
        for (_, expected), (_, bucket) in zip(original, restored):
            assert bucket == expected

    def test_observer_sets(self, view, index):
        assert len(view.observer_sets) == len(index.observer_sets)
        for ref, members in enumerate(index.observer_sets):
            assert view.observer_sets[ref] == members
        assert view.observer_sets[-1] == index.observer_sets[-1]

    @pytest.mark.parametrize("table", ["drop", "irr", "roa", "routes"])
    def test_lookup_queries_match_trie(self, view, index, table):
        lazy, trie = getattr(view, table), getattr(index, table)
        for prefix in _sample_prefixes(index):
            assert lazy.get(prefix) == trie.get(prefix)
            assert (prefix in lazy) == (prefix in trie)
            assert lazy.lookup_covering(prefix) == trie.lookup_covering(prefix)
            assert lazy.lookup_covered(prefix) == trie.lookup_covered(prefix)
            assert lazy.lookup_best(prefix) == trie.lookup_best(prefix)

    def test_buckets_are_memoized(self, view, index):
        prefix = next(iter(index.routes))
        assert view.routes.get(prefix) is view.routes.get(prefix)

    def test_engine_output_byte_identical(self, view, index):
        """The golden query-output gate: JSON path == binary path, byte
        for byte, over a prefix sample and both window edges."""
        built = QueryEngine(index, instrumentation=Instrumentation())
        lazy = QueryEngine(view, instrumentation=Instrumentation())
        for prefix in _sample_prefixes(index):
            for day in (index.window.start, index.window.end):
                expected = json.dumps(
                    built.lookup(prefix, day).to_dict(), sort_keys=True
                )
                actual = json.dumps(
                    lazy.lookup(prefix, day).to_dict(), sort_keys=True
                )
                assert actual == expected


class TestHeaderPins:
    def test_foreign_key_rejected(self, saved_dir):
        with pytest.raises(IndexLoadError, match="key"):
            load_store_index(saved_dir, expected_key="deadbeef00000000")

    def test_empty_expected_key_skips_check(self, saved_dir):
        assert load_store_index(saved_dir, expected_key="").total_peers > 0

    def test_foreign_generator_rejected(self, saved_dir, index, monkeypatch):
        monkeypatch.setattr("repro.store.index.GENERATOR_VERSION", 999)
        with pytest.raises(IndexLoadError, match="generator"):
            load_store_index(saved_dir, expected_key=index.key)

    def test_foreign_kind_rejected(self, roa_status_dir, index):
        with pytest.raises(IndexLoadError, match="kind"):
            load_store_index(roa_status_dir, expected_key=index.key)

    @pytest.fixture()
    def roa_status_dir(self, world, tmp_path):
        from repro.analysis.substrate import compute_roa_status

        blob = encode_substrate(compute_roa_status(world))
        (tmp_path / STORE_INDEX_FILENAME).write_bytes(blob)
        return tmp_path

    def test_missing_file_raises(self, tmp_path, index):
        with pytest.raises(OSError):
            load_store_index(tmp_path, expected_key=index.key)


class TestFaultsAndEviction:
    def test_save_fault_degrades_with_warning(self, index, tmp_path):
        instr = Instrumentation()
        with injected("io-error@store.save"):
            with pytest.warns(RuntimeWarning, match="index store failed"):
                assert save_store_index(
                    index, tmp_path, instrumentation=instr
                ) is None
        assert instr.counters["store_save_errors"] == 1
        assert not (tmp_path / STORE_INDEX_FILENAME).exists()

    def test_load_fault_raises_for_eviction(self, index, tmp_path):
        save_store_index(index, tmp_path)
        with injected("truncate@store.load"):
            with pytest.raises(Exception):
                load_store_index(tmp_path, expected_key=index.key)

    def test_torn_binary_falls_back_to_json(self, index, tmp_path):
        """load_persisted_index evicts a bad .bin and serves the JSON."""
        from repro.query import save_index

        save_index(index, tmp_path)
        path = tmp_path / STORE_INDEX_FILENAME
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
        instr = Instrumentation()
        loaded = load_persisted_index(
            tmp_path, expected_key=index.key, instrumentation=instr
        )
        assert loaded is not None
        assert loaded.sizes() == index.sizes()
        assert instr.counters["store_evictions"] == 1
        assert not path.exists()
        assert (tmp_path / INDEX_FILENAME).exists()

    def test_healthy_binary_is_preferred(self, index, tmp_path):
        from repro.query import save_index
        from repro.store.index import StoreIndexView

        save_index(index, tmp_path)
        instr = Instrumentation()
        loaded = load_persisted_index(
            tmp_path, expected_key=index.key, instrumentation=instr
        )
        assert isinstance(loaded, StoreIndexView)
        assert instr.counters["store_loads"] == 1
        assert "query_index_loads" not in instr.counters

    def test_nothing_persisted_returns_none(self, tmp_path):
        assert load_persisted_index(tmp_path, expected_key="") is None
