"""The incremental-mode HTTP surface: ``/v1/watch`` and ``/v1/ingest``.

Both daemons mount the two endpoints only when constructed with an
:class:`~repro.ingest.Ingestor` (404 otherwise, keeping the read-only
serving surface unchanged), so every test here runs parametrized over
the threaded and asyncio transports.  The watch tests cover the JSON
long-poll and SSE modes, ``since`` resume, and parameter validation;
the ingest tests cover the advance verbs, the 409 conflict answers,
and — the critical liveness property — that a day applied over HTTP is
immediately visible to ``/v1/status`` through the atomic engine swap.
"""

import contextlib
import json
import threading
import time
from datetime import timedelta

import pytest

from repro.ingest import Ingestor, WatchEvent
from repro.net.prefix import IPv4Prefix
from repro.query import AsyncQueryServer, QueryServer
from repro.query.http import API_VERSION, SSE_CONTENT_TYPE

from .conftest import fetch


@contextlib.contextmanager
def serving(kind, engine, ingestor):
    """One running daemon of either transport, with an ingestor."""
    if kind == "threaded":
        srv = QueryServer(engine, "127.0.0.1", 0, ingestor=ingestor)
        thread = threading.Thread(
            target=srv.serve_until_shutdown, daemon=True
        )
        thread.start()
        try:
            yield srv.server_address
        finally:
            srv.shutdown()
            thread.join(timeout=10)
            assert not thread.is_alive()
    else:
        srv = AsyncQueryServer(
            engine, "127.0.0.1", 0, workers=1, ingestor=ingestor
        )
        srv.start()
        thread = threading.Thread(
            target=srv.serve_until_shutdown, daemon=True
        )
        thread.start()
        try:
            yield srv.server_address
        finally:
            srv.drain()
            thread.join(timeout=20)
            assert not thread.is_alive()


@pytest.fixture(params=["threaded", "async"])
def daemon(request, world, stored):
    """A fresh incremental-mode daemon (its own ingestor per test)."""
    ingestor = Ingestor(world, key=stored.key)
    with serving(request.param, ingestor.engine, ingestor) as address:
        yield address, ingestor


def _json(reply):
    return json.loads(reply.body)


class TestMounting:
    @pytest.mark.parametrize("kind", ["threaded", "async"])
    def test_endpoints_absent_without_ingestor(self, kind, engine):
        with serving(kind, engine, None) as address:
            for method, target in (
                ("GET", "/v1/watch"),
                ("POST", "/v1/ingest"),
            ):
                reply = fetch(address, method, target, b"")
                assert reply.status == 404
                assert _json(reply)["error"]["code"] == "query.not-found"

    def test_healthz_reports_ingest_state(self, daemon, world):
        address, ingestor = daemon
        body = _json(fetch(address, "GET", "/healthz"))
        assert body["ingest"] == {
            "as_of": world.window.start.isoformat(),
            "base_day": world.window.start.isoformat(),
            "days_applied": 0,
            "last_seq": 0,
            "window_end": world.window.end.isoformat(),
        }


class TestIngestEndpoint:
    def test_empty_body_advances_one_day(self, daemon, world):
        address, ingestor = daemon
        reply = fetch(address, "POST", "/v1/ingest", b"")
        assert reply.status == 200
        payload = _json(reply)
        assert payload["api"] == API_VERSION
        data = payload["data"]
        day_one = world.window.start + timedelta(days=1)
        assert [r["day"] for r in data["results"]] == [day_one.isoformat()]
        assert data["results"][0]["replayed"] is False
        assert data["ingest"]["as_of"] == day_one.isoformat()
        assert ingestor.as_of == day_one

    def test_applied_day_serves_immediately(self, daemon, world):
        # The liveness property: the atomic engine swap makes the new
        # day's answers visible to /v1/status with no restart.
        address, ingestor = daemon
        day = world.window.start + timedelta(days=1)
        fetch(address, "POST", "/v1/ingest", b"")
        prefix = next(iter(ingestor.index.drop))
        reply = fetch(
            address,
            "GET",
            f"/v1/status?prefix={prefix}&on={day.isoformat()}",
        )
        assert reply.status == 200
        expected = ingestor.engine.lookup(prefix, day).to_dict()
        assert _json(reply)["data"] == expected

    def test_days_and_day_verbs(self, daemon, world):
        address, ingestor = daemon
        reply = fetch(address, "POST", "/v1/ingest", b'{"days": 3}')
        assert reply.status == 200
        assert len(_json(reply)["data"]["results"]) == 3
        target = world.window.start + timedelta(days=5)
        reply = fetch(
            address,
            "POST",
            "/v1/ingest",
            json.dumps({"day": target.isoformat()}).encode(),
        )
        assert reply.status == 200
        assert _json(reply)["data"]["ingest"]["as_of"] == target.isoformat()

    @pytest.mark.parametrize(
        ("body", "code"),
        [
            (b"[1]", "query.bad-request"),
            (b"{nope", "query.bad-request"),
            (b'{"day": "2021-02-30"}', "query.bad-day"),
            (b'{"days": 0}', "query.bad-request"),
            (b'{"days": "x"}', "query.bad-request"),
            (b'{"day": "2020-01-01", "days": 2}', "query.bad-request"),
        ],
    )
    def test_bad_bodies_are_400(self, daemon, body, code):
        address, _ingestor = daemon
        reply = fetch(address, "POST", "/v1/ingest", body)
        assert reply.status == 400
        assert _json(reply)["error"]["code"] == code

    def test_target_outside_window_is_409(self, daemon, world):
        address, ingestor = daemon
        beyond = world.window.end + timedelta(days=1)
        reply = fetch(
            address,
            "POST",
            "/v1/ingest",
            json.dumps({"day": beyond.isoformat()}).encode(),
        )
        assert reply.status == 409
        payload = _json(reply)
        assert payload["error"]["code"] == "ingest.failed"
        assert ingestor.as_of == world.window.start

    def test_backwards_target_is_409(self, daemon, world):
        address, _ingestor = daemon
        fetch(address, "POST", "/v1/ingest", b'{"days": 2}')
        backwards = world.window.start + timedelta(days=1)
        reply = fetch(
            address,
            "POST",
            "/v1/ingest",
            json.dumps({"day": backwards.isoformat()}).encode(),
        )
        assert reply.status == 409
        assert _json(reply)["error"]["code"] == "ingest.failed"


def _advance_until_events(address, limit=30):
    """Apply days over HTTP until at least one watch event exists."""
    for _ in range(limit):
        data = _json(fetch(address, "POST", "/v1/ingest", b""))["data"]
        if data["ingest"]["last_seq"] > 0:
            return data["ingest"]
    raise AssertionError(f"no events within {limit} days")


class TestWatchEndpoint:
    def test_json_mode_delivers_events(self, daemon):
        address, ingestor = daemon
        status = _advance_until_events(address)
        reply = fetch(address, "GET", "/v1/watch")
        assert reply.status == 200
        assert reply.headers.get("content-type") == "application/json"
        payload = _json(reply)
        assert payload["api"] == API_VERSION
        data = payload["data"]
        assert data["as_of"] == status["as_of"]
        assert data["last_seq"] == status["last_seq"]
        seqs = [e["seq"] for e in data["events"]]
        assert seqs == list(range(1, status["last_seq"] + 1))
        for event in data["events"]:
            assert set(event) == {
                "seq", "kind", "day", "prefix", "detail",
                "origin", "alarm", "sbl_id",
            }
            assert event["kind"] in ("listed", "roa-expired", "hijack")

    def test_since_resumes(self, daemon):
        address, _ingestor = daemon
        status = _advance_until_events(address)
        last = status["last_seq"]
        assert _json(
            fetch(address, "GET", f"/v1/watch?since={last}")
        )["data"]["events"] == []
        tail = _json(
            fetch(address, "GET", f"/v1/watch?since={last - 1}")
        )["data"]["events"]
        assert [e["seq"] for e in tail] == [last]

    def test_sse_mode(self, daemon):
        address, _ingestor = daemon
        status = _advance_until_events(address)
        reply = fetch(address, "GET", "/v1/watch?mode=sse")
        assert reply.status == 200
        assert reply.headers.get("content-type") == SSE_CONTENT_TYPE
        text = reply.body.decode("utf-8")
        assert text.startswith("retry: 2000\n\n")
        frames = [f for f in text.split("\n\n") if f.startswith("id:")]
        assert len(frames) == status["last_seq"]
        first = frames[0].splitlines()
        assert first[0] == "id: 1"
        assert first[1].startswith("event: ")
        data = json.loads(first[2].removeprefix("data: "))
        assert data["seq"] == 1
        assert first[1] == f"event: {data['kind']}"

    def test_long_poll_wakes_on_publish(self, daemon, world):
        address, ingestor = daemon
        event = WatchEvent(
            seq=0,
            kind="listed",
            day=world.window.start,
            prefix=IPv4Prefix.parse("198.51.100.0/24"),
            detail="poked by the test",
        )
        got = []

        def poll():
            got.append(
                fetch(address, "GET", "/v1/watch?timeout=10&since=0")
            )

        thread = threading.Thread(target=poll)
        thread.start()
        # Give the long-poll time to reach the blocking wait, then
        # publish directly into the log: the poll must wake early.
        time.sleep(0.2)
        ingestor.events.publish([event])
        thread.join(timeout=15)
        assert not thread.is_alive()
        events = _json(got[0])["data"]["events"]
        assert [e["detail"] for e in events] == ["poked by the test"]

    def test_zero_timeout_returns_immediately(self, daemon):
        address, _ingestor = daemon
        reply = fetch(address, "GET", "/v1/watch?timeout=0")
        assert reply.status == 200
        assert _json(reply)["data"]["events"] == []

    @pytest.mark.parametrize(
        "target",
        [
            "/v1/watch?since=x",
            "/v1/watch?timeout=soon",
            "/v1/watch?mode=stream",
        ],
    )
    def test_bad_params_are_400(self, daemon, target):
        address, _ingestor = daemon
        reply = fetch(address, "GET", target)
        assert reply.status == 400
        assert _json(reply)["error"]["code"] == "query.bad-request"


class TestWebhookDelivery:
    def test_advance_pushes_to_webhook(self, world, stored):
        import http.server

        received = []
        arrived = threading.Event()

        class Receiver(http.server.BaseHTTPRequestHandler):
            def do_POST(self):
                length = int(self.headers["Content-Length"])
                received.append(json.loads(self.rfile.read(length)))
                arrived.set()
                self.send_response(204)
                self.end_headers()

            def log_message(self, *args):
                pass

        httpd = http.server.HTTPServer(("127.0.0.1", 0), Receiver)
        thread = threading.Thread(target=httpd.serve_forever, daemon=True)
        thread.start()
        try:
            host, port = httpd.server_address
            ingestor = Ingestor(
                world,
                key=stored.key,
                webhook_url=f"http://{host}:{port}/hook",
            )
            while ingestor.events.last_seq == 0:
                ingestor.advance()
            assert arrived.wait(timeout=10)
        finally:
            httpd.shutdown()
            thread.join(timeout=10)
        payload = received[0]
        assert payload["api"] == API_VERSION
        events = payload["data"]["events"]
        assert events
        assert events[0]["seq"] == 1
