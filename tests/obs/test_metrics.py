"""Unit tests for the metrics registry and Prometheus exposition."""

import pytest

from repro.obs import DEFAULT_BUCKETS, MetricsRegistry


class TestNaming:
    def test_prefix_enforced(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="convention"):
            registry.counter("cache_hits_total")
        with pytest.raises(ValueError, match="convention"):
            registry.counter("repro_Bad_Name")

    def test_bad_label_rejected(self):
        with pytest.raises(ValueError, match="bad label"):
            MetricsRegistry().counter("repro_x_total", labels=("0bad",))


class TestCounter:
    def test_inc_and_value(self):
        counter = MetricsRegistry().counter(
            "repro_cache_hits_total", labels=("tier",)
        )
        counter.inc(tier="l1")
        counter.inc(2, tier="l1")
        counter.inc(tier="l2")
        assert counter.value(tier="l1") == 3
        assert counter.value(tier="l2") == 1
        assert counter.value(tier="unseen") == 0

    def test_counters_only_go_up(self):
        counter = MetricsRegistry().counter("repro_x_total")
        with pytest.raises(ValueError, match="only go up"):
            counter.inc(-1)

    def test_label_mismatch_rejected(self):
        counter = MetricsRegistry().counter("repro_x_total", labels=("a",))
        with pytest.raises(ValueError, match="expected labels"):
            counter.inc(b="nope")


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("repro_server_inflight")
        gauge.set(5)
        gauge.inc()
        gauge.dec(2)
        assert gauge.value() == 4


class TestHistogram:
    def test_default_buckets_are_log_scale(self):
        assert DEFAULT_BUCKETS[0] == pytest.approx(1e-6)
        assert DEFAULT_BUCKETS[-1] == pytest.approx(100.0)
        assert len(DEFAULT_BUCKETS) == 17

    def test_observe_sum_count(self):
        histogram = MetricsRegistry().histogram("repro_x_seconds")
        histogram.observe(0.002)
        histogram.observe(0.5)
        histogram.observe(1e9)  # beyond the last bound: overflow bucket
        assert histogram.count() == 3
        assert histogram.sum() == pytest.approx(1e9 + 0.502)


class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        registry = MetricsRegistry()
        first = registry.counter("repro_x_total", labels=("a",))
        assert registry.counter("repro_x_total", labels=("a",)) is first
        assert registry.get("repro_x_total") is first
        assert registry.get("repro_missing") is None

    def test_kind_and_label_conflicts_rejected(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total", labels=("a",))
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("repro_x_total", labels=("a",))
        with pytest.raises(ValueError, match="already registered"):
            registry.counter("repro_x_total", labels=("b",))


class TestExpositionGolden:
    def test_text_format(self):
        """The exposition output, byte for byte (format 0.0.4)."""
        registry = MetricsRegistry()
        requests = registry.counter(
            "repro_server_requests_total",
            help="HTTP requests handled, by endpoint.",
            labels=("endpoint",),
        )
        requests.inc(3, endpoint="status")
        requests.inc(endpoint="batch")
        draining = registry.gauge(
            "repro_server_draining", help="1 while draining."
        )
        draining.set(0)
        latency = registry.histogram(
            "repro_cache_lock_wait_seconds",
            help="Lock wait.",
            buckets=(0.001, 1.0),
        )
        latency.observe(0.0005)
        latency.observe(0.25)
        latency.observe(5.0)
        assert registry.expose() == (
            "# HELP repro_cache_lock_wait_seconds Lock wait.\n"
            "# TYPE repro_cache_lock_wait_seconds histogram\n"
            'repro_cache_lock_wait_seconds_bucket{le="0.001"} 1\n'
            'repro_cache_lock_wait_seconds_bucket{le="1"} 2\n'
            'repro_cache_lock_wait_seconds_bucket{le="+Inf"} 3\n'
            "repro_cache_lock_wait_seconds_sum 5.2505\n"
            "repro_cache_lock_wait_seconds_count 3\n"
            "# HELP repro_server_draining 1 while draining.\n"
            "# TYPE repro_server_draining gauge\n"
            "repro_server_draining 0\n"
            "# HELP repro_server_requests_total "
            "HTTP requests handled, by endpoint.\n"
            "# TYPE repro_server_requests_total counter\n"
            'repro_server_requests_total{endpoint="batch"} 1\n'
            'repro_server_requests_total{endpoint="status"} 3\n'
        )

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_x_total", labels=("path",))
        counter.inc(path='a"b\\c\nd')
        (sample,) = list(counter.samples())
        assert sample == 'repro_x_total{path="a\\"b\\\\c\\nd"} 1'
