"""§6.2.2: is anyone filtering with the RIR AS0 trust anchors?"""

from repro.analysis import detect_as0_filtering


def bench_sec62_as0_filtering(benchmark, world, entries):
    result = benchmark(detect_as0_filtering, world)
    # Shape: ~30 routed prefixes would be rejected under the AS0 TALs,
    # and every full-table peer carries essentially all of them — nobody
    # filters with those TALs.
    assert 20 < len(result.filterable_prefixes) < 45
    assert result.peers_filtering == frozenset()
    assert result.mean_carried > 0.9 * len(result.filterable_prefixes)
