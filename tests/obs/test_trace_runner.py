"""Span-tree integrity across the parallel runner (--jobs 4).

Worker processes trace into private tracers whose exports ride the
result tuples; the parent adopts them under its per-experiment spans.
These tests pin that the resulting tree is connected, correctly
reparented, and byte-stable modulo timestamps and pids.
"""

import os

import pytest

from repro.analysis import load_entries
from repro.analysis.substrate import AnalysisSubstrate
from repro.runtime import Instrumentation, WorldCache, run_experiments
from repro.synth import ScenarioConfig

#: Substrate-free experiments, so two runs produce identical span trees
#: without depending on substrate warm/load ordering.
SUBSET = ["fig1", "tab1", "fig3", "fig6"]


@pytest.fixture(scope="module")
def cached_world(tmp_path_factory):
    cache = WorldCache(tmp_path_factory.mktemp("trace-cache"))
    outcome = cache.fetch(ScenarioConfig.tiny())
    return outcome.world, outcome.directory


@pytest.fixture(scope="module")
def shared(cached_world):
    world, _ = cached_world
    return load_entries(world), AnalysisSubstrate(world)


def _run(cached_world, shared, jobs):
    world, directory = cached_world
    entries, substrate = shared
    instr = Instrumentation()
    outcome = run_experiments(
        world,
        SUBSET,
        jobs=jobs,
        directory=directory,
        entries=entries,
        substrate=substrate,
        instrumentation=instr,
    )
    assert outcome.ok
    return instr


def _skeleton(tracer):
    """The trace minus timestamps and pids (the byte-stable part)."""
    return [
        {
            key: value
            for key, value in span.items()
            if key not in ("start", "duration", "pid")
        }
        for span in tracer.export()
    ]


class TestSpanTree:
    def test_parallel_tree_is_connected(self, cached_world, shared):
        instr = _run(cached_world, shared, jobs=4)
        spans = list(instr.tracer.finished)
        by_id = {span.span_id: span for span in spans}
        # Every parent link resolves inside this tracer: adoption
        # remapped the worker-side ids, leaving no dangling references.
        for span in spans:
            assert span.parent_id is None or span.parent_id in by_id

        records = {
            span.name: span
            for span in spans
            if span.attributes.get("group") == "experiment"
        }
        assert sorted(records) == sorted(SUBSET)
        for exp_id in SUBSET:
            children = [
                s for s in spans if s.parent_id == records[exp_id].span_id
            ]
            assert [c.name for c in children] == [f"experiment:{exp_id}"]
            assert children[0].attributes == {"experiment": exp_id}

    def test_worker_spans_keep_their_origin_pid(self, cached_world, shared):
        instr = _run(cached_world, shared, jobs=4)
        worker_pids = {
            span.pid
            for span in instr.tracer.finished
            if span.name.startswith("experiment:")
        }
        assert os.getpid() not in worker_pids
        # The parent-side experiment records carry the parent pid.
        parent_pids = {
            span.pid
            for span in instr.tracer.finished
            if span.attributes.get("group") == "experiment"
        }
        assert parent_pids == {os.getpid()}

    def test_trace_is_byte_stable_modulo_timestamps(
        self, cached_world, shared
    ):
        first = _run(cached_world, shared, jobs=4)
        second = _run(cached_world, shared, jobs=4)
        assert _skeleton(first.tracer) == _skeleton(second.tracer)

    def test_serial_and_parallel_trees_match(self, cached_world, shared):
        serial = _run(cached_world, shared, jobs=1)
        parallel = _run(cached_world, shared, jobs=4)
        assert _skeleton(serial.tracer) == _skeleton(parallel.tracer)
