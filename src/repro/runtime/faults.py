"""Deterministic fault injection for the runtime layer.

Every error path in the runtime subsystem (cache IO, atomic renames,
worker processes, slow stages) has a named *injection point*.  A
:class:`FaultInjector` armed with :class:`FaultSpec` entries decides —
deterministically, or pseudo-randomly from a fixed seed — which points
fire, how many times, and with what effect.  Production runs carry no
injector and every point is a no-op costing one module-global read.

Specs are compact strings, comma-separated::

    io-error@cache.save          raise InjectedIOError at the site
    truncate@cache.store         chop the staged file in half
    crash@worker.run:fig1        os._exit the worker process
    rename-race@cache.rename     make the final rename lose its race
    slow@experiment.run:*+0.05   sleep 50ms at every matching site

Each spec takes optional suffixes: ``*N`` fires N times before
disarming (default 1), ``~P`` fires with probability P per match
(seeded, so reproducible), ``+S`` sleeps S seconds (``slow`` only).
Sites are matched with :mod:`fnmatch` globs.

The serving tier exposes two sites of its own: ``server.reload``
(inside :meth:`AsyncQueryServer.reload`, before the engine factory
runs — a fired fault fails the reload and keeps the old index) and
``server.accept`` (at async connection admission — ``io-error`` drops
the connection, ``slow`` holds it open, which the drain tests use).

The sweep engine adds three more: ``sweep.plan`` (grid expansion —
a fault fails the whole sweep), ``sweep.cell:<name>`` (at the top of
each cell, in the worker — an ``io-error`` fails just that cell, a
``crash`` kills the worker and exercises the serial-fallback
recovery), and ``sweep.collect`` (report assembly).

The incremental ingest path adds two: ``ingest.apply`` (at the top of
:func:`~repro.ingest.apply.apply_delta`, before any copy-on-write —
a fired fault fails that day's advance while the previous day's state
keeps serving) and ``ingest.journal`` (``io-error`` at a journal
append degrades to journal-less operation, a ``truncate`` at load
tears the container so recovery must evict it and rebuild from the
base day — eviction, never poisoning).

The base-snapshot cache mirrors the world cache's site split:
``base.save`` (``io-error`` degrades the store to an uncached run),
``base.store`` (``truncate`` tears the staged entry so the published
snapshot is corrupt — the next load evicts and rebuilds it, never
poisoning the scenario cells forked from it), ``base.load`` (any
fault surfaces as a :class:`~repro.errors.CacheCorruptionError` and
triggers the same evict-and-rebuild), and ``base.fork`` (inside
:func:`~repro.scenarios.compose.fork_scenario_world`, before the
copy — fails the dependent cell, leaves the base untouched).

Activation is either programmatic (the :func:`injected` context
manager — inherited by forked workers) or ambient via
``$REPRO_FAULTS`` + ``$REPRO_FAULT_SEED`` (read lazily and re-read on
change, so spawned workers and monkeypatched tests both see it).

``crash`` faults only ever fire inside worker processes (marked by
:func:`mark_worker_process` from the pool initializer); in the parent
they are skipped *without* being consumed, so the runner's in-parent
serial fallback is guaranteed to make progress past a crash-poisoned
experiment.
"""

from __future__ import annotations

import fnmatch
import os
import random
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

from ..errors import ReproError

__all__ = [
    "FAULTS_ENV",
    "FAULT_SEED_ENV",
    "FaultInjector",
    "FaultSpec",
    "FaultSpecError",
    "InjectedIOError",
    "corrupt_file",
    "fault_point",
    "in_worker_process",
    "injected",
    "mark_worker_process",
]

FAULTS_ENV = "REPRO_FAULTS"
FAULT_SEED_ENV = "REPRO_FAULT_SEED"

#: Exit status of a crash-injected worker; distinctive enough to spot
#: in a BrokenProcessPool message or a CI log.
CRASH_EXIT_CODE = 66

KINDS = frozenset({"io-error", "truncate", "crash", "rename-race", "slow"})


class FaultSpecError(ReproError, ValueError):
    """A ``$REPRO_FAULTS`` spec string that does not parse."""

    code = "runtime.fault-spec"


class InjectedIOError(OSError):
    """The OSError raised by ``io-error`` and ``rename-race`` faults."""


@dataclass
class FaultSpec:
    """One armed fault: what fires, where, how often."""

    kind: str
    site: str
    times: int = 1
    probability: float = 1.0
    delay: float = 0.05
    remaining: int = field(init=False)

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise FaultSpecError(
                f"unknown fault kind {self.kind!r} "
                f"(expected one of: {', '.join(sorted(KINDS))})"
            )
        if self.times < 1:
            raise FaultSpecError(f"fault repeat count must be >= 1: {self.times}")
        if not 0.0 <= self.probability <= 1.0:
            raise FaultSpecError(
                f"fault probability must be in [0, 1]: {self.probability}"
            )
        self.remaining = self.times

    @classmethod
    def parse(cls, text: str) -> "FaultSpec":
        """Parse one ``kind@site[*N][~P][+S]`` spec."""
        head, sep, site = text.partition("@")
        if not sep or not head or not site:
            raise FaultSpecError(
                f"bad fault spec {text!r} (expected kind@site[*N][~P][+S])"
            )
        times, probability, delay = 1, 1.0, 0.05
        try:
            while site[-1:].isdigit() or site[-1:] == ".":
                # Peel numeric suffixes right-to-left so site globs keep
                # their literal dots.
                cut = max(site.rfind(ch) for ch in "*~+")
                if cut < 0:
                    break
                marker, value = site[cut], site[cut + 1 :]
                site = site[:cut]
                if marker == "*":
                    times = int(value)
                elif marker == "~":
                    probability = float(value)
                else:
                    delay = float(value)
        except ValueError as error:
            raise FaultSpecError(f"bad fault spec {text!r}: {error}") from None
        if not site:
            raise FaultSpecError(f"bad fault spec {text!r}: empty site")
        return cls(head, site, times=times, probability=probability, delay=delay)


class FaultInjector:
    """An armed set of fault specs plus the seeded RNG that gates them."""

    def __init__(self, specs: list[FaultSpec], *, seed: int = 0) -> None:
        self.specs = list(specs)
        self.seed = seed
        self._rng = random.Random(seed)
        #: Every fault actually fired, as ``(kind, site)`` — for tests
        #: and post-mortem assertions.
        self.fired: list[tuple[str, str]] = []

    @classmethod
    def parse(cls, text: str, *, seed: int = 0) -> "FaultInjector":
        """An injector from a comma-separated spec string."""
        specs = [
            FaultSpec.parse(part.strip())
            for part in text.split(",")
            if part.strip()
        ]
        return cls(specs, seed=seed)

    @classmethod
    def from_env(cls, environ=os.environ) -> "FaultInjector | None":
        """The injector ``$REPRO_FAULTS`` describes, or None."""
        text = environ.get(FAULTS_ENV, "").strip()
        if not text:
            return None
        try:
            seed = int(environ.get(FAULT_SEED_ENV, "0"))
        except ValueError:
            seed = 0
        return cls.parse(text, seed=seed)

    def trigger(self, site: str, *, allow_crash: bool) -> FaultSpec | None:
        """The first armed spec matching ``site``, consumed — or None.

        ``crash`` specs are skipped (not consumed) unless
        ``allow_crash``, so a crash armed for a worker site stays armed
        for workers while the parent passes through unharmed.
        """
        for spec in self.specs:
            if spec.remaining <= 0:
                continue
            if not fnmatch.fnmatchcase(site, spec.site):
                continue
            if spec.kind == "crash" and not allow_crash:
                continue
            if spec.probability < 1.0 and self._rng.random() >= spec.probability:
                continue
            spec.remaining -= 1
            self.fired.append((spec.kind, site))
            return spec
        return None


# ---------------------------------------------------------------------------
# process-wide activation
# ---------------------------------------------------------------------------

_ACTIVE: FaultInjector | None = None
#: What _ACTIVE was built from: an env spec string, or "<programmatic>".
_ACTIVE_SOURCE: str | None = None
_IN_WORKER = False


def mark_worker_process() -> None:
    """Called from pool initializers: crash faults may fire here."""
    global _IN_WORKER
    _IN_WORKER = True


def in_worker_process() -> bool:
    """True inside an experiment worker process."""
    return _IN_WORKER


def active() -> FaultInjector | None:
    """The process-wide injector, tracking ``$REPRO_FAULTS`` lazily."""
    global _ACTIVE, _ACTIVE_SOURCE
    if _ACTIVE_SOURCE == "<programmatic>":
        return _ACTIVE
    env = os.environ.get(FAULTS_ENV, "").strip() or None
    if env != _ACTIVE_SOURCE:
        _ACTIVE = FaultInjector.from_env()
        _ACTIVE_SOURCE = env
    return _ACTIVE


@contextmanager
def injected(spec: str, *, seed: int = 0) -> Iterator[FaultInjector]:
    """Arm ``spec`` for the duration of a with-block (tests)."""
    global _ACTIVE, _ACTIVE_SOURCE
    previous = (_ACTIVE, _ACTIVE_SOURCE)
    injector = FaultInjector.parse(spec, seed=seed)
    _ACTIVE, _ACTIVE_SOURCE = injector, "<programmatic>"
    try:
        yield injector
    finally:
        _ACTIVE, _ACTIVE_SOURCE = previous


# ---------------------------------------------------------------------------
# injection points
# ---------------------------------------------------------------------------


def fault_point(site: str, *, instrumentation=None) -> None:
    """The generic injection point: a no-op unless a fault is armed.

    Fires at most one armed spec: ``slow`` sleeps, ``crash`` kills the
    worker process with :data:`CRASH_EXIT_CODE`, ``io-error`` and
    ``rename-race`` raise :class:`InjectedIOError`.  (``truncate``
    faults need a file and fire via :func:`corrupt_file` instead.)
    """
    injector = active()
    if injector is None:
        return
    spec = injector.trigger(site, allow_crash=_IN_WORKER)
    if spec is None or spec.kind == "truncate":
        return
    if instrumentation is not None:
        instrumentation.incr("faults_injected")
        instrumentation.incr(f"fault_{spec.kind}")
    if spec.kind == "slow":
        time.sleep(spec.delay)
        return
    if spec.kind == "crash":
        os._exit(CRASH_EXIT_CODE)
    raise InjectedIOError(f"injected {spec.kind} at {site}")


def corrupt_file(site: str, path: Path, *, instrumentation=None) -> bool:
    """The ``truncate`` injection point: chop ``path`` to half its size.

    Models a writer that died mid-write (or a disk that lied about
    durability) *after* the entry became visible.  Returns True when a
    fault fired.
    """
    injector = active()
    if injector is None:
        return False
    spec = injector.trigger(site, allow_crash=False)
    if spec is None or spec.kind != "truncate":
        return False
    if instrumentation is not None:
        instrumentation.incr("faults_injected")
        instrumentation.incr("fault_truncate")
    data = path.read_bytes()
    path.write_bytes(data[: len(data) // 2])
    return True
