"""Unit tests for the PHAS/ARTEMIS-style hijack monitor."""

from datetime import date

import pytest

from repro.bgp.alarms import (
    Alarm,
    AlarmKind,
    HijackMonitor,
    ProtectedPrefix,
)
from repro.bgp.messages import ASPath
from repro.bgp.ribs import RouteInterval, RouteIntervalStore
from repro.net.prefix import IPv4Prefix

P22 = IPv4Prefix.parse("132.255.0.0/22")
P24 = IPv4Prefix.parse("132.255.1.0/24")
OTHER = IPv4Prefix.parse("10.10.0.0/16")
OWNER = 263692
HIJACKER = 66666


def interval(prefix, path, start, end=None):
    return RouteInterval(
        prefix=prefix,
        path=ASPath.of(*path),
        start=start,
        end=end,
        observers=frozenset({0}),
    )


def monitor(upstreams=(21575,), baseline=None):
    return HijackMonitor(
        [ProtectedPrefix(P22, frozenset({OWNER}),
                         frozenset(upstreams))],
        baseline_until=baseline,
    )


class TestAlarmKinds:
    def test_origin_alarm_when_owner_silent(self):
        store = RouteIntervalStore()
        store.add(interval(P22, (1, HIJACKER), date(2021, 1, 1)))
        alarms = list(monitor().scan(store))
        assert [a.kind for a in alarms] == [AlarmKind.ORIGIN]
        assert alarms[0].origin == HIJACKER

    def test_moas_alarm_when_owner_active(self):
        store = RouteIntervalStore()
        store.add(interval(P22, (21575, OWNER), date(2019, 1, 1)))
        store.add(interval(P22, (1, HIJACKER), date(2021, 1, 1)))
        alarms = list(monitor().scan(store))
        assert [a.kind for a in alarms] == [AlarmKind.MOAS]

    def test_subprefix_alarm(self):
        store = RouteIntervalStore()
        store.add(interval(P24, (21575, OWNER), date(2021, 1, 1)))
        alarms = list(monitor().scan(store))
        assert [a.kind for a in alarms] == [AlarmKind.SUBPREFIX]
        assert alarms[0].protected == P22
        assert alarms[0].observed == P24

    def test_path_alarm_for_new_upstream(self):
        """The Figure 4 signature: same origin, new transit."""
        store = RouteIntervalStore()
        store.add(interval(P22, (50509, 34665, OWNER), date(2020, 12, 15)))
        alarms = list(monitor().scan(store))
        assert [a.kind for a in alarms] == [AlarmKind.PATH]
        assert "34665" in alarms[0].detail

    def test_expected_upstream_no_alarm(self):
        store = RouteIntervalStore()
        store.add(interval(P22, (21575, OWNER), date(2021, 1, 1)))
        assert list(monitor().scan(store)) == []

    def test_unprotected_prefix_ignored(self):
        store = RouteIntervalStore()
        store.add(interval(OTHER, (1, HIJACKER), date(2021, 1, 1)))
        assert list(monitor().scan(store)) == []


class TestBaselineLearning:
    def test_upstreams_learned_from_history(self):
        store = RouteIntervalStore()
        store.add(interval(P22, (21575, OWNER), date(2018, 1, 1),
                           date(2020, 7, 10)))
        store.add(interval(P22, (50509, 34665, OWNER), date(2020, 12, 15)))
        mon = HijackMonitor(
            [ProtectedPrefix(P22, frozenset({OWNER}))],
            baseline_until=date(2019, 1, 1),
        )
        alarms = list(mon.scan(store))
        assert [a.kind for a in alarms] == [AlarmKind.PATH]

    def test_no_upstream_knowledge_no_path_alarm(self):
        # Without configured or learned upstreams, an origin-matching
        # announcement cannot be judged.
        store = RouteIntervalStore()
        store.add(interval(P22, (50509, 34665, OWNER), date(2020, 12, 15)))
        mon = HijackMonitor([ProtectedPrefix(P22, frozenset({OWNER}))])
        assert list(mon.scan(store)) == []

    def test_hijack_during_baseline_not_learned(self):
        # Baseline learning only trusts legitimate-origin paths.
        store = RouteIntervalStore()
        store.add(interval(P22, (1, HIJACKER), date(2018, 6, 1),
                           date(2018, 7, 1)))
        store.add(interval(P22, (21575, OWNER), date(2021, 1, 1)))
        mon = HijackMonitor(
            [ProtectedPrefix(P22, frozenset({OWNER}))],
            baseline_until=date(2019, 1, 1),
        )
        # The baseline-period hijack still alarms (ORIGIN), its upstream
        # (AS1) is not learned as legitimate, and the owner's later
        # normal announcement raises nothing further.
        alarms = list(mon.scan(store))
        assert [a.kind for a in alarms] == [AlarmKind.ORIGIN]
        assert alarms[0].day == date(2018, 6, 1)


class TestCaseStudyDetection:
    """The monitor catches the RPKI-valid hijack that ROV misses."""

    @pytest.fixture(scope="class")
    def world(self):
        from repro.synth import ScenarioConfig, build_world

        return build_world(ScenarioConfig.tiny())

    def test_case_study_hijack_detected(self, world):
        case = world.truth.case_study
        mon = HijackMonitor(
            [
                ProtectedPrefix(
                    case.signed_prefix,
                    frozenset({case.owner_asn}),
                    frozenset({case.owner_transit_asn}),
                )
            ]
        )
        alarms = list(mon.scan(world.bgp))
        kinds = {a.kind for a in alarms}
        # The hijack trips the PATH alarm (same origin, new transit) and
        # the /24 more-specifics trip SUBPREFIX alarms.
        assert AlarmKind.PATH in kinds
        assert AlarmKind.SUBPREFIX in kinds
        path_alarm = next(a for a in alarms if a.kind is AlarmKind.PATH)
        assert path_alarm.day == case.hijack_start

    def test_alarm_str(self):
        alarm = Alarm(
            kind=AlarmKind.PATH,
            protected=P22,
            observed=P22,
            day=date(2020, 12, 15),
            origin=OWNER,
            detail="new upstream",
        )
        assert "path" in str(alarm)
        assert "AS263692" in str(alarm)
