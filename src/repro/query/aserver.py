"""The asyncio serving tier: multi-worker, hot-reloadable, drainable.

``repro-drop serve --async --workers N`` runs this instead of the
threaded daemon.  N *workers* — one thread each, one asyncio event loop
each, one ``SO_REUSEPORT`` listening socket each (kernel-level accept
load balancing; a ``dup()`` of one socket where the option is missing)
— share a single read-only :class:`~repro.query.http.ServerCore`, so
every worker answers from the same immutable
:class:`~repro.query.index.QueryIndex` with zero per-worker state.  The
wire contract (``/v1/status``, ``/v1/batch``, ``/healthz``,
``/metrics``, every error payload) is byte-identical to the threaded
:class:`~repro.query.server.QueryServer` because both call the same
core; ``tests/query/test_aserver.py`` pins the parity over live
sockets.

On top of the threaded tier's contract this adds:

* **keep-alive + pipelining** — each connection handles any number of
  HTTP/1.1 requests; a burst of pipelined requests is parsed out of the
  connection buffer and answered in order with one coalesced write
  (what the load harness exploits to saturate a shared CPU);
* **hot reload** — ``SIGHUP`` or ``POST /v1/admin/reload`` builds a
  fresh engine via ``reload_factory`` and swaps it in atomically
  (:meth:`ServerCore.set_engine`): in-flight requests finish on the
  index they started with, new requests see the new one, and a failed
  rebuild (``server.reload`` fault site) leaves the old index serving
  and bumps ``repro_server_reload_failures_total``;
* **graceful drain** — SIGTERM/SIGINT (or :meth:`drain`) flips
  ``/healthz`` to 503, closes the listening sockets, finishes in-flight
  requests (answered with ``Connection: close``), closes idle
  keep-alive connections, then stops the loops; :meth:`shutdown` makes
  the call signature symmetric with the threaded server;
* **per-worker spans** — each worker records its lifetime (with
  connection/request tallies) in a private tracer, re-homed into the
  run's span tree on shutdown exactly like the parallel runner's
  worker spans.

``server.accept`` is a fault site at connection admission: an armed
``io-error`` drops the connection (counted as
``repro_server_errors_total{kind="accept"}``) without touching the
accept loop, and a ``slow`` fault holds a connection open — how the
drain tests pin "in-flight requests finish".
"""

from __future__ import annotations

import asyncio
import contextlib
import signal
import socket
import threading
from time import perf_counter

from ..obs import Tracer
from ..runtime.faults import fault_point
from .engine import QueryEngine
from .http import (
    BAD_REQUEST_BODY,
    DEFAULT_CACHE_SIZE,
    MAX_BATCH_BYTES,
    ReloadError,
    Response,
    ServerCore,
    parse_content_length,
)

__all__ = ["AsyncQueryServer"]

#: Seconds a drain waits for in-flight requests before cutting them off.
DRAIN_GRACE_SECONDS = 10.0

#: Largest accepted request head (request line + headers), in bytes;
#: also the asyncio stream high-water mark.
_MAX_HEAD_BYTES = 64 * 1024

#: Bytes pulled off a connection per read.
_READ_CHUNK = 256 * 1024

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

_BAD_REQUEST_BODY = BAD_REQUEST_BODY


def _head_bytes(response: Response, *, close: bool) -> bytes:
    head = (
        f"HTTP/1.1 {response.status} "
        f"{_REASONS.get(response.status, 'OK')}\r\n"
        f"Content-Type: {response.content_type}\r\n"
        f"Content-Length: {len(response.body)}\r\n"
    )
    if close:
        head += "Connection: close\r\n"
    return (head + "\r\n").encode("latin-1")


def _parse_head(blob: bytes) -> tuple[str, str, bool, int]:
    """``(method, target, keep_alive, content_length)`` from one head.

    Raises :class:`ValueError` for anything that is not a plausible
    HTTP/1.x request head — the connection is answered with one 400 and
    closed (a byte-stream desync is not recoverable).
    """
    lines = blob.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise ValueError(f"bad request line {lines[0]!r}")
    method, target, version = parts
    headers: dict[str, str] = {}
    for line in lines[1:]:
        name, sep, value = line.partition(":")
        if sep:
            headers[name.strip().lower()] = value.strip()
    length = parse_content_length(headers.get("content-length"))
    connection = headers.get("connection", "").lower()
    keep_alive = (
        connection != "close"
        if version == "HTTP/1.1"
        else connection == "keep-alive"
    )
    return method, target, keep_alive, length


class _Worker:
    """One serving worker: a thread running one event loop."""

    def __init__(self, wid: int) -> None:
        self.wid = wid
        self.sock: socket.socket | None = None
        self.thread: threading.Thread | None = None
        self.loop: asyncio.AbstractEventLoop | None = None
        self.stop_event: asyncio.Event | None = None
        self.ready = threading.Event()
        self.error: BaseException | None = None
        self.connections = 0
        self.requests = 0
        self.spans: tuple[dict, ...] = ()


class AsyncQueryServer:
    """The asyncio multi-worker daemon around one shared core.

    ``port=0`` binds an ephemeral port; :attr:`server_address` holds
    the bound address after :meth:`start`.  ``reload_factory`` — a
    zero-argument callable returning a fresh :class:`QueryEngine` — is
    what enables ``SIGHUP`` / ``POST /v1/admin/reload``; without it the
    admin endpoint stays 404 and SIGHUP is ignored.  The factory should
    reuse the serving engine's :class:`~repro.obs.Instrumentation` so
    the daemon's counters stay unified across reloads (the CLI does).
    """

    def __init__(
        self,
        engine: QueryEngine,
        host: str = "127.0.0.1",
        port: int = 8765,
        *,
        workers: int = 2,
        reload_factory=None,
        verbose: bool = False,
        ingestor=None,
        cache_size: int = DEFAULT_CACHE_SIZE,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.reload_factory = reload_factory
        self.core = ServerCore(
            engine,
            verbose=verbose,
            reloader=self.reload if reload_factory is not None else None,
            ingestor=ingestor,
            cache_size=cache_size,
        )
        self.instrumentation = self.core.instrumentation
        self.registry = self.core.registry
        self._host, self._port = host, port
        self._workers: list[_Worker] = [
            _Worker(wid) for wid in range(workers)
        ]
        self._reload_lock = threading.Lock()
        self._started = False
        self._drain_started = threading.Event()
        self.server_address: tuple[str, int] | None = None

    # -- lifecycle ---------------------------------------------------------

    @property
    def draining(self) -> bool:
        return self.core.draining.is_set()

    @property
    def engine(self) -> QueryEngine:
        return self.core.engine

    def _bind_sockets(self) -> list[socket.socket]:
        """One listening socket per worker, all on the same port.

        ``SO_REUSEPORT`` gives each worker its own accept queue (the
        kernel balances connections); platforms without it share one
        queue via ``dup()`` — both cases leave the request path
        identical.
        """
        reuseport = hasattr(socket, "SO_REUSEPORT") and len(self._workers) > 1
        first = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            first.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            if reuseport:
                first.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
            first.bind((self._host, self._port))
            first.listen(1024)
            first.setblocking(False)
        except BaseException:
            first.close()
            raise
        address = first.getsockname()
        sockets = [first]
        try:
            for _ in range(1, len(self._workers)):
                if reuseport:
                    extra = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
                    extra.setsockopt(
                        socket.SOL_SOCKET, socket.SO_REUSEADDR, 1
                    )
                    extra.setsockopt(
                        socket.SOL_SOCKET, socket.SO_REUSEPORT, 1
                    )
                    extra.bind(address)
                    extra.listen(1024)
                else:
                    extra = first.dup()
                extra.setblocking(False)
                sockets.append(extra)
        except BaseException:
            for sock in sockets:
                sock.close()
            raise
        self.server_address = address[:2]
        return sockets

    def start(self) -> None:
        """Bind and start every worker; returns once all are accepting."""
        if self._started:
            return
        sockets = self._bind_sockets()
        self._started = True
        for worker, sock in zip(self._workers, sockets):
            worker.sock = sock
            worker.thread = threading.Thread(
                target=self._worker_run,
                args=(worker,),
                name=f"repro-aserve-{worker.wid}",
                daemon=True,
            )
            worker.thread.start()
        for worker in self._workers:
            if not worker.ready.wait(timeout=30) or worker.error is not None:
                self.drain()
                raise RuntimeError(
                    f"worker {worker.wid} failed to start: {worker.error}"
                )

    def serve_until_shutdown(self) -> None:
        """Serve until :meth:`drain` (or a drain signal), then clean up."""
        self.start()
        started = perf_counter()
        for worker in self._workers:
            worker.thread.join()
        # Re-home every worker's spans under one parent, exactly like
        # the runner adopts experiment-worker spans.
        tracer = self.instrumentation.tracer
        parent = self.instrumentation.record(
            "serve-async", perf_counter() - started, group="server"
        )
        for worker in self._workers:
            tracer.adopt(worker.spans, parent_id=parent.span_id)

    def drain(self) -> None:
        """Graceful shutdown: stop accepting, finish in-flight, stop.

        Idempotent; safe from any thread (including signal-handler
        helper threads).  Blocks only long enough to post the stop
        request to each loop — :meth:`serve_until_shutdown` (or
        :meth:`shutdown`'s caller joining the serving thread) observes
        completion.
        """
        first = self.core.start_drain()
        if not first and self._drain_started.is_set():
            return
        self._drain_started.set()
        for worker in self._workers:
            if worker.thread is not None:
                # A worker that is still booting publishes its loop and
                # stop event before flipping ready — wait it out so the
                # stop request cannot fall between the cracks.
                worker.ready.wait(timeout=5)
            loop, stop = worker.loop, worker.stop_event
            if loop is not None and stop is not None and loop.is_running():
                loop.call_soon_threadsafe(stop.set)

    def shutdown(self) -> None:
        """Alias for :meth:`drain` (signature parity with QueryServer)."""
        self.drain()

    def install_signal_handlers(self) -> None:
        """SIGTERM/SIGINT drain; SIGHUP hot-reloads (main thread only)."""
        if threading.current_thread() is not threading.main_thread():
            return
        for signum in (signal.SIGTERM, signal.SIGINT):
            signal.signal(signum, self._handle_drain_signal)
        if hasattr(signal, "SIGHUP") and self.reload_factory is not None:
            signal.signal(signal.SIGHUP, self._handle_hup)

    def _handle_drain_signal(self, signum, frame) -> None:
        # drain() only posts to the loops, but joining happens in
        # serve_until_shutdown — keep the handler minimal anyway.
        threading.Thread(target=self.drain, daemon=True).start()

    def _handle_hup(self, signum, frame) -> None:
        threading.Thread(target=self._reload_quietly, daemon=True).start()

    def _reload_quietly(self) -> None:
        with contextlib.suppress(ReloadError):
            self.reload()

    # -- hot reload --------------------------------------------------------

    def reload(self) -> dict:
        """Build a fresh engine and swap it in; the hot-reload entry.

        Serialized (one rebuild at a time); on any failure the old
        engine keeps serving, ``serve_reload_failures`` is counted, and
        :class:`ReloadError` is raised — ``POST /v1/admin/reload``
        renders it as a 500 with the stable ``query.reload-failed``
        code.  Returns the new health snapshot on success.
        """
        if self.reload_factory is None:
            raise ReloadError("no reload factory configured")
        instr = self.instrumentation
        with self._reload_lock:
            try:
                fault_point("server.reload", instrumentation=instr)
                engine = self.reload_factory()
            except Exception as error:
                instr.incr("serve_reload_failures")
                raise ReloadError(
                    f"reload failed: {type(error).__name__}: {error}"
                ) from error
            snapshot = self.core.set_engine(engine)
            instr.incr("serve_reloads")
            return snapshot

    # -- worker internals --------------------------------------------------

    def _worker_run(self, worker: _Worker) -> None:
        tracer = Tracer()
        loop = asyncio.new_event_loop()
        worker.loop = loop
        try:
            with tracer.span("server-worker", worker=worker.wid) as span:
                loop.run_until_complete(self._worker_main(worker))
                span.attributes["connections"] = worker.connections
                span.attributes["requests"] = worker.requests
        except BaseException as error:  # pragma: no cover - startup failures
            worker.error = error
            worker.ready.set()
        finally:
            with contextlib.suppress(Exception):
                loop.run_until_complete(loop.shutdown_asyncgens())
            loop.close()
            worker.spans = tracer.export()

    async def _worker_main(self, worker: _Worker) -> None:
        loop = asyncio.get_running_loop()
        worker.stop_event = asyncio.Event()
        active: set[asyncio.StreamWriter] = set()
        busy: set[asyncio.StreamWriter] = set()

        async def handle(reader, writer):
            await self._connection(worker, reader, writer, active, busy)

        server = await asyncio.start_server(
            handle, sock=worker.sock, limit=_MAX_HEAD_BYTES
        )
        worker.ready.set()
        await worker.stop_event.wait()
        server.close()
        await server.wait_closed()
        # In-flight requests finish (answered with Connection: close);
        # idle keep-alive connections are cut.  Give bytes that already
        # reached the process a beat to hit their handlers first — a
        # request can be sitting in a connection's reader before that
        # connection ever marked itself busy.
        await asyncio.sleep(0.05)
        for writer in list(active):
            if writer not in busy:
                writer.close()
        deadline = loop.time() + DRAIN_GRACE_SECONDS
        while active and loop.time() < deadline:
            await asyncio.sleep(0.01)
        for writer in list(active):  # pragma: no cover - grace expiry
            writer.close()

    async def _connection(
        self,
        worker: _Worker,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        active: set,
        busy: set,
    ) -> None:
        core = self.core
        active.add(writer)
        worker.connections += 1
        try:
            try:
                fault_point(
                    "server.accept", instrumentation=core.instrumentation
                )
            except Exception:
                core.instrumentation.incr("serve_accept_errors")
                return
            buffer = bytearray()
            while True:
                try:
                    chunk = await reader.read(_READ_CHUNK)
                except ConnectionError:
                    break
                if not chunk:
                    break
                buffer += chunk
                busy.add(writer)
                try:
                    close = await self._answer_buffered(
                        worker, reader, writer, buffer
                    )
                finally:
                    busy.discard(writer)
                if close:
                    break
        finally:
            busy.discard(writer)
            active.discard(writer)
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _answer_buffered(
        self, worker, reader, writer, buffer: bytearray
    ) -> bool:
        """Answer every complete request in ``buffer``; True to close.

        Pipelined requests are answered in order with *one* coalesced
        write per burst — on a single shared CPU, per-response writes
        cost a scheduler round trip each (the peer wakes per segment),
        which is the difference between ~5k and well past 10k RPS.
        """
        core = self.core
        out: list[bytes] = []
        close = False
        while not close:
            split = buffer.find(b"\r\n\r\n")
            if split < 0:
                if len(buffer) > _MAX_HEAD_BYTES:
                    core.instrumentation.incr("serve_client_errors")
                    response = Response(
                        400, "application/json", _BAD_REQUEST_BODY
                    )
                    out.append(
                        _head_bytes(response, close=True) + response.body
                    )
                    close = True
                break
            head = bytes(buffer[: split + 4])
            del buffer[: split + 4]
            try:
                method, target, keep_alive, length = _parse_head(head)
            except ValueError:
                core.instrumentation.incr("serve_client_errors")
                response = Response(400, "application/json", _BAD_REQUEST_BODY)
                out.append(_head_bytes(response, close=True) + response.body)
                close = True
                break
            body = None
            if 0 < length <= MAX_BATCH_BYTES:
                while len(buffer) < length:
                    try:
                        chunk = await reader.read(_READ_CHUNK)
                    except ConnectionError:
                        chunk = b""
                    if not chunk:  # truncated body: nothing to answer
                        return True
                    buffer += chunk
                body = bytes(buffer[:length])
                del buffer[:length]
            if target.startswith(("/v1/admin/", "/v1/watch", "/v1/ingest")):
                # Blocking endpoints — reloads rebuild an index
                # (seconds), watch long-polls sleep, ingest applies a
                # delta — run on an executor thread; this worker's loop
                # keeps answering lookups meanwhile (the zero-downtime
                # property).  Flush answered requests first so they are
                # not held hostage by the slow call.
                if out:
                    writer.write(b"".join(out))
                    out = []
                    try:
                        await writer.drain()
                    except ConnectionError:
                        return True
                loop = asyncio.get_running_loop()
                response = await loop.run_in_executor(
                    None, core.handle, method, target, body, length
                )
            else:
                response = core.handle(method, target, body, length)
            worker.requests += 1
            # An unread oversize body desyncs the stream: answer, close.
            close = (
                not keep_alive
                or length > MAX_BATCH_BYTES
                or core.draining.is_set()
            )
            out.append(_head_bytes(response, close=close) + response.body)
        if out:
            writer.write(b"".join(out))
            try:
                await writer.drain()
            except ConnectionError:
                return True
        return close
