"""Unit tests for individual world-builder stages."""

from datetime import date, timedelta

import pytest

from repro.rpki.tal import TalSet
from repro.synth.builder import WorldBuilder
from repro.synth.config import ScenarioConfig


@pytest.fixture
def builder():
    b = WorldBuilder(ScenarioConfig.tiny())
    b.build_platform()
    return b


class TestPlatformStage:
    def test_peer_counts(self, builder):
        cfg = builder.cfg
        assert len(builder.peers) == (
            cfg.full_table_peers + cfg.partial_peers
        )
        assert len(builder.peers.full_table_peer_ids()) == (
            cfg.full_table_peers
        )

    def test_collectors_covered(self, builder):
        names = {c.name for c in builder.peers.collectors()}
        assert len(names) == builder.cfg.collectors

    def test_filtering_peers_flagged(self, builder):
        flagged = {
            p.peer_id for p in builder.peers.peers() if p.filters_drop
        }
        assert flagged == builder.truth.filtering_peer_ids
        assert len(flagged) == builder.cfg.drop_filtering_peers


class TestAnnounceHelper:
    def test_filtering_carveouts_before_listing(self, builder):
        prefix = builder.carver.carve(24)
        listed = date(2020, 6, 1)
        interval = builder.announce(
            prefix,
            builder.topology.path_from_core(builder.next_asn()),
            date(2020, 1, 1),
            None,
            listed=listed,
        )
        for peer_id in builder.truth.filtering_peer_ids:
            assert interval.observed_by(peer_id, date(2020, 3, 1))
            assert not interval.observed_by(peer_id, date(2020, 7, 1))

    def test_filtering_peers_never_see_post_listing_announcements(
        self, builder
    ):
        prefix = builder.carver.carve(24)
        listed = date(2020, 6, 1)
        interval = builder.announce(
            prefix,
            builder.topology.path_from_core(builder.next_asn()),
            listed + timedelta(days=10),
            None,
            listed=listed,
        )
        for peer_id in builder.truth.filtering_peer_ids:
            assert not interval.observed_by(peer_id, date(2021, 1, 1))
        ordinary = (
            builder.peers.full_table_peer_ids()
            - builder.truth.filtering_peer_ids
        )
        assert interval.observed_by(next(iter(ordinary)), date(2021, 1, 1))


class TestPoolStage:
    def test_pools_match_config_at_start(self, builder):
        builder.build_rir_pools()
        for rir, profile in builder.cfg.regions.items():
            pool = builder.resources.free_pool(
                rir, builder.cfg.window.start
            )
            assert pool.num_addresses == pytest.approx(
                profile.free_pool_start, rel=0.05
            )

    def test_unallocated_carving_stays_in_pool(self, builder):
        builder.build_rir_pools()
        prefix = builder.carve_unallocated("LACNIC", 20)
        assert builder.resources.is_unallocated(
            prefix, builder.cfg.window.end
        )
        assert builder.resources.managing_rir(prefix) == "LACNIC"


class TestSignedSpaceStage:
    def test_unrouted_signed_holders_recorded(self, builder):
        builder.build_rir_pools()
        builder.build_signed_space()
        assert set(builder.truth.unrouted_signed_holders) == {
            "amazon", "prudential", "alibaba"
        }

    def test_amazon_roa_event_date(self, builder):
        builder.build_rir_pools()
        builder.build_signed_space()
        amazon_roas = [
            r
            for r in builder.roas.records()
            if builder.resources.status_of(
                r.roa.prefix, builder.cfg.window.end
            ).holder == "amazon"
        ]
        assert amazon_roas
        assert all(
            r.created == builder.cfg.amazon_roa_event for r in amazon_roas
        )

    def test_prudential_space_unrouted_signed(self, builder):
        builder.build_rir_pools()
        builder.build_signed_space()
        end = builder.cfg.window.end
        holders = builder.resources.holders_of_space(end)
        prudential = holders["prudential"]
        assert prudential.slash8_equivalents == pytest.approx(
            builder.cfg.prudential_unrouted_slash8, rel=0.05
        )
        for prefix in prudential.iter_prefixes():
            assert not builder.bgp.is_announced(prefix, end)
            assert builder.roas.covering(prefix, end, TalSet.default())
