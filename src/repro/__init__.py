"""repro — reproduction of "Stop, DROP, and ROA" (IMC 2022).

A complete measurement stack for studying the Spamhaus DROP blocklist
against BGP, IRR, RPKI, and RIR-allocation data:

* :mod:`repro.net` — IPv4 prefixes, interval sets, radix trie, timelines;
* :mod:`repro.bgp` — collectors/peers, interval RIB, streams, visibility;
* :mod:`repro.drop` — DROP episodes/snapshots, SBL records, categorizer;
* :mod:`repro.irr` — RPSL and the journaled RADb database;
* :mod:`repro.rpki` — ROAs, TALs, RFC 6811 validation, AS0 policy;
* :mod:`repro.rirstats` — delegated files and the allocation registry;
* :mod:`repro.synth` — the deterministic synthetic world generator;
* :mod:`repro.analysis` — the paper's analyses, one module per experiment;
* :mod:`repro.reporting` — text tables/figures and the experiment registry;
* :mod:`repro.obs` — spans, metrics registry, Prometheus exposition: the
  one instrumentation API behind ``--timings``/``--trace``/``/metrics``;
* :mod:`repro.errors` — the unified error surface (``ReproError.code``).

Quickstart::

    from repro.synth import ScenarioConfig, build_world
    from repro.reporting import run_experiment, render_text

    world = build_world(ScenarioConfig.tiny())
    print(render_text(run_experiment(world, "tab1")))
"""

__version__ = "1.0.0"

#: The unified error surface (see :mod:`repro.errors`): every one of
#: these subclasses :class:`repro.errors.ReproError` and carries a
#: stable ``.code``.  Resolved lazily so ``import repro`` stays cheap.
_ERROR_EXPORTS = {
    "ReproError": "repro.errors",
    "CacheCorruptionError": "repro.errors",
    "BatchParseError": "repro.query.engine",
    "IndexLoadError": "repro.query.index",
    "SubstrateLoadError": "repro.analysis.substrate",
    "FaultSpecError": "repro.runtime.faults",
    "RequestError": "repro.query.http",
    "BadPrefixError": "repro.query.http",
    "BadDayError": "repro.query.http",
    "NotFoundError": "repro.query.http",
    "ReloadError": "repro.query.http",
}

__all__ = ["__version__", *sorted(_ERROR_EXPORTS)]


def __getattr__(name: str):
    module_name = _ERROR_EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)
