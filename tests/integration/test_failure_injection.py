"""Failure injection: malformed archives fail loudly, not silently.

A measurement pipeline that silently skips malformed input produces
wrong numbers; these tests pin down the error behaviour of every parser
and the robustness of snapshot-diff reconstruction to imperfect input.
The serving tier's fault sites (``server.reload``, ``server.accept``)
live at the end: a poisoned hot reload must keep the old index serving,
and a poisoned accept must drop exactly one connection.
"""

from datetime import date

import pytest

from repro.drop.droplist import DropArchive, parse_snapshot_text
from repro.irr.radb import IrrDatabase
from repro.irr.rpsl import RpslError, parse_objects
from repro.net.prefix import IPv4Prefix, PrefixError
from repro.net.timeline import DateWindow
from repro.rirstats.delegated import parse_delegated
from repro.rpki.archive import RoaArchive
from repro.synth import ScenarioConfig, build_world, load_world, save_world


class TestMalformedInputs:
    def test_drop_snapshot_bad_prefix(self):
        with pytest.raises(PrefixError):
            parse_snapshot_text("not-a-prefix/24\n")

    def test_drop_snapshot_bad_length(self):
        with pytest.raises(PrefixError):
            parse_snapshot_text("10.0.0.0/99\n")

    def test_rpsl_dangling_continuation(self):
        with pytest.raises(RpslError):
            list(parse_objects("    orphan continuation\n"))

    def test_rpsl_missing_colon(self):
        with pytest.raises(RpslError):
            list(parse_objects("route 10.0.0.0/24\n"))

    def test_delegated_truncated_record(self):
        text = "2|apnic|20220330|1|19830101|20220330|+10\napnic|AU|ipv4\n"
        with pytest.raises(ValueError):
            list(parse_delegated(text))

    def test_delegated_bad_status(self):
        text = (
            "2|apnic|20220330|1|19830101|20220330|+10\n"
            "apnic|AU|ipv4|1.0.0.0|256|20110811|hoarded\n"
        )
        with pytest.raises(ValueError):
            list(parse_delegated(text))

    def test_delegated_unknown_registry(self):
        text = (
            "2|apnic|20220330|1|19830101|20220330|+10\n"
            "example|AU|ipv4|1.0.0.0|256|20110811|allocated\n"
        )
        with pytest.raises(ValueError):
            list(parse_delegated(text))

    def test_roa_csv_wrong_header(self):
        with pytest.raises(ValueError):
            RoaArchive.from_snapshots(
                [(date(2020, 1, 1), "ASN,Prefix\nAS1,10.0.0.0/8\n")]
            )

    def test_corrupted_archive_file(self, tmp_path):
        world = build_world(ScenarioConfig.tiny(seed=99))
        directory = tmp_path / "world"
        save_world(world, directory, drop_step_days=30)
        (directory / "roas.jsonl").write_text("this is not json\n")
        with pytest.raises(ValueError):
            load_world(directory)

    def test_missing_archive_file(self, tmp_path):
        world = build_world(ScenarioConfig.tiny(seed=99))
        directory = tmp_path / "world"
        save_world(world, directory, drop_step_days=30)
        (directory / "sbl.jsonl").unlink()
        with pytest.raises(FileNotFoundError):
            load_world(directory)


class TestImperfectSnapshots:
    """Snapshot-diff reconstruction under gaps and unordered input."""

    def test_drop_snapshots_out_of_order(self):
        window = DateWindow(date(2020, 1, 1), date(2020, 3, 1))
        p = IPv4Prefix.parse("192.0.2.0/24")
        snapshots = [
            (date(2020, 2, 1), {p: "SBL1"}),
            (date(2020, 1, 1), {}),
            (date(2020, 3, 1), {}),
        ]
        archive = DropArchive.from_snapshots(snapshots, window)
        episodes = list(archive.episodes())
        assert len(episodes) == 1
        assert episodes[0].added == date(2020, 2, 1)
        assert episodes[0].removed == date(2020, 3, 1)

    def test_drop_snapshot_gap_coarsens_but_keeps_episode(self):
        window = DateWindow(date(2020, 1, 1), date(2020, 12, 31))
        p = IPv4Prefix.parse("192.0.2.0/24")
        # Listed Feb..Aug, but we only have Jan / Jun / Dec snapshots.
        snapshots = [
            (date(2020, 1, 1), {}),
            (date(2020, 6, 1), {p: None}),
            (date(2020, 12, 1), {}),
        ]
        archive = DropArchive.from_snapshots(snapshots, window)
        episode = archive.first_episode(p)
        assert episode is not None
        assert episode.added == date(2020, 6, 1)
        assert episode.removed == date(2020, 12, 1)

    def test_irr_flapping_object(self):
        # An object present, absent, then present again yields two
        # journal records, not a parse failure.
        route_text = (
            "route: 192.0.2.0/24\norigin: AS64500\n"
            "mnt-by: MAINT-X\nsource: RADB\n"
        )
        empty = "% empty\n"
        snapshots = [
            (date(2020, 1, 1), route_text),
            (date(2020, 2, 1), empty),
            (date(2020, 3, 1), route_text),
        ]
        db = IrrDatabase.from_snapshots(snapshots)
        records = db.exact(IPv4Prefix.parse("192.0.2.0/24"))
        assert len(records) == 2
        assert records[0].deleted == date(2020, 2, 1)
        assert records[1].created == date(2020, 3, 1)
        assert records[1].deleted is None

    def test_empty_snapshot_set(self):
        window = DateWindow(date(2020, 1, 1), date(2020, 3, 1))
        archive = DropArchive.from_snapshots([], window)
        assert len(archive) == 0


class TestServingFaults:
    """The serving tier's fault sites, end to end."""

    @pytest.fixture(scope="class")
    def index(self):
        from repro.query import build_index

        return build_index(build_world(ScenarioConfig.tiny(seed=99)))

    def test_poisoned_reload_keeps_old_index(self, index):
        from repro.query import AsyncQueryServer, QueryEngine, ReloadError
        from repro.runtime import Instrumentation
        from repro.runtime.faults import injected

        instr = Instrumentation()
        factory_calls = []

        def factory():
            factory_calls.append(1)
            return QueryEngine(index, instrumentation=instr)

        server = AsyncQueryServer(
            QueryEngine(index, instrumentation=instr),
            "127.0.0.1",
            0,
            reload_factory=factory,
        )
        old_engine = server.engine
        with injected("io-error@server.reload"):
            with pytest.raises(ReloadError) as excinfo:
                server.reload()
        assert excinfo.value.code == "query.reload-failed"
        # The fault fired before the factory: no rebuild, old engine.
        assert factory_calls == []
        assert server.engine is old_engine
        assert instr.counters["serve_reload_failures"] == 1
        assert "serve_reloads" not in instr.counters
        # Disarmed, the next reload succeeds.
        snapshot = server.reload()
        assert snapshot["index"] == index.sizes()
        assert instr.counters["serve_reloads"] == 1

    def test_poisoned_accept_drops_one_connection(self, index):
        import json
        import threading

        from repro.query import AsyncQueryServer, QueryEngine
        from repro.runtime import Instrumentation
        from repro.runtime.faults import injected

        from tests.query.conftest import fetch

        instr = Instrumentation()
        server = AsyncQueryServer(
            QueryEngine(index, instrumentation=instr), "127.0.0.1", 0,
            workers=1,
        )
        server.start()
        thread = threading.Thread(
            target=server.serve_until_shutdown, daemon=True
        )
        thread.start()
        try:
            prefix = next(iter(index.routes))
            target = f"/v1/status?prefix={prefix}"
            with injected("io-error@server.accept"):
                # The armed connection is dropped without a response...
                with pytest.raises((ConnectionError, OSError, EOFError)):
                    fetch(server.server_address, "GET", target)
            # ...the very next connection is served normally.
            reply = fetch(server.server_address, "GET", target)
            assert reply.status == 200
            assert instr.counters["serve_accept_errors"] == 1
            metrics = fetch(server.server_address, "GET", "/metrics")
            assert (
                'repro_server_errors_total{kind="accept"} 1'
                in metrics.body.decode()
            )
            health = json.loads(
                fetch(server.server_address, "GET", "/healthz").body
            )
            assert health["counters"]["serve_accept_errors"] == 1
        finally:
            server.drain()
            thread.join(timeout=20)
        assert not thread.is_alive()
