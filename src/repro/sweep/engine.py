"""The sweep engine: fan scenario cells across the parallel runner.

Each cell is one scenario fetched through the scenario cache
(:meth:`~repro.runtime.cache.WorldCache.fetch_scenario`) and scored
with :func:`~repro.scenarios.metrics.evaluate_scenario` — so a cell
that already ran is a cache hit and a resumed sweep builds zero
worlds.  Cells run via :func:`~repro.runtime.runner.parallel_map`,
inheriting its worker-loss recovery: a dying worker (OOM kill,
injected ``crash@sweep.cell:*``) breaks the pool and the whole map
re-runs serially in the parent, costing wall time but never results.

Failures are per-cell, not per-sweep: a cell that raises is reported
with its failure kind while the other cells complete, and the CLI
turns "some cells failed" into exit 3 (degraded) with the kinds on
stderr.  Fault sites: ``sweep.plan`` (grid expansion),
``sweep.cell:<name>`` (inside the worker, before the fetch),
``sweep.collect`` (result merge in the parent).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from pathlib import Path

from ..obs import Instrumentation
from ..runtime import faults
from ..runtime.cache import WorldCache, default_cache_root
from ..runtime.faults import fault_point
from ..runtime.runner import parallel_map
from ..scenarios.metrics import evaluate_scenario
from ..scenarios.spec import Scenario
from .report import sweep_report
from .spec import SweepSpec

__all__ = ["CellResult", "SweepOutcome", "run_sweep"]


@dataclass(frozen=True, slots=True)
class CellResult:
    """One sweep cell's outcome (ok or failed)."""

    name: str
    family: str
    #: Axis values: ``{"rov": p, "drop": q, "route_server": r}``.
    axes: dict
    #: ``"ok"`` or ``"failed"``.
    status: str
    #: Failure kind: a :class:`~repro.errors.ReproError` code or the
    #: exception class name; None for ok cells.
    kind: str | None
    error: str | None
    #: Cache resolution (``hit``/``miss``/``refresh``); None on failure.
    cache_status: str | None
    #: Scenario cache key; None on failure before key derivation.
    key: str | None
    seconds: float
    #: :func:`evaluate_scenario` output; None on failure.
    metrics: dict | None


@dataclass(frozen=True, slots=True)
class SweepOutcome:
    """A finished sweep: per-cell results plus the comparative report."""

    spec: SweepSpec
    cells: tuple[CellResult, ...]
    report: dict

    @property
    def failed(self) -> tuple[CellResult, ...]:
        return tuple(c for c in self.cells if c.status != "ok")

    @property
    def worlds_built(self) -> int:
        """Cells resolved by building (cache misses + forced rebuilds)."""
        return sum(
            1 for c in self.cells if c.cache_status in ("miss", "refresh")
        )


def _mark_if_child(parent_pid: int) -> None:
    """Pool initializer: mark real workers for in-worker-only faults.

    ``parallel_map`` runs the initializer in the *parent* on its serial
    and broken-pool fallback paths — marking there would let ``crash``
    faults kill the whole run instead of one worker, so mark only when
    the pid differs.
    """
    if os.getpid() != parent_pid:
        faults.mark_worker_process()


def _run_cell(task: tuple) -> dict:
    """One cell, in a worker: fetch through the cache and evaluate.

    Module-level and dict-in/dict-out so it crosses the process pool;
    the worker's counters ride along for the parent to merge.
    """
    name, family, axes, scenario_json, cache_root, refresh = task
    started = time.perf_counter()
    instr = Instrumentation()
    doc = {
        "name": name,
        "family": family,
        "axes": axes,
        "status": "failed",
        "kind": None,
        "error": None,
        "cache_status": None,
        "key": None,
        "metrics": None,
        "counters": {},
    }
    try:
        fault_point(f"sweep.cell:{name}", instrumentation=instr)
        scenario = Scenario.from_json(scenario_json)
        outcome = WorldCache(Path(cache_root)).fetch_scenario(
            scenario, instrumentation=instr, refresh=refresh
        )
        doc["cache_status"] = outcome.status
        doc["key"] = outcome.key
        doc["metrics"] = evaluate_scenario(outcome.world, outcome.truth)
        doc["status"] = "ok"
    except Exception as error:
        doc["kind"] = getattr(error, "code", None) or type(error).__name__
        doc["error"] = str(error)
    doc["seconds"] = round(time.perf_counter() - started, 6)
    doc["counters"] = dict(instr.counters)
    return doc


def run_sweep(
    spec: SweepSpec,
    *,
    jobs: int = 1,
    cache_root: Path | None = None,
    refresh: bool = False,
    instrumentation: Instrumentation | None = None,
) -> SweepOutcome:
    """Run every cell of ``spec`` and assemble the comparative report.

    ``jobs`` fans cells across worker processes; results come back in
    grid order regardless.  Worker counters are merged into
    ``instrumentation`` so cache hit/miss/build totals (and therefore
    degraded-run detection) see the whole sweep.
    """
    instr = instrumentation or Instrumentation()
    root = Path(cache_root) if cache_root is not None else default_cache_root()
    with instr.stage("sweep-plan", group="sweep"):
        fault_point("sweep.plan", instrumentation=instr)
        cells = spec.cells()
    axis_names = {
        "rov": "rov",
        "drop-subscription": "drop",
        "route-server": "route_server",
    }
    tasks = [
        (
            name,
            scenario.attacks[0].family,
            {axis_names[d.kind]: d.rate for d in scenario.defenses},
            scenario.to_json(),
            str(root),
            refresh,
        )
        for name, scenario in cells
    ]
    with instr.stage("sweep-run", group="sweep"):
        raw = parallel_map(
            _run_cell,
            tasks,
            jobs=jobs,
            initializer=_mark_if_child,
            initargs=(os.getpid(),),
        )
    with instr.stage("sweep-collect", group="sweep"):
        fault_point("sweep.collect", instrumentation=instr)
        results: list[CellResult] = []
        for doc in raw:
            for counter, amount in doc["counters"].items():
                instr.incr(counter, amount)
            result = CellResult(
                name=doc["name"],
                family=doc["family"],
                axes=doc["axes"],
                status=doc["status"],
                kind=doc["kind"],
                error=doc["error"],
                cache_status=doc["cache_status"],
                key=doc["key"],
                seconds=doc["seconds"],
                metrics=doc["metrics"],
            )
            results.append(result)
            if result.status == "ok":
                instr.incr("sweep_cells_ok")
                if result.cache_status in ("miss", "refresh"):
                    instr.incr("sweep_worlds_built")
            else:
                instr.incr("sweep_cells_failed")
        report = sweep_report(spec, results)
    return SweepOutcome(spec=spec, cells=tuple(results), report=report)
