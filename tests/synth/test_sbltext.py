"""Tests for SBL text generation: the categorizer must recover intent."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.drop.categories import Category
from repro.drop.categorize import Categorizer
from repro.drop.sbl import extract_asns
from repro.net.prefix import IPv4Prefix
from repro.synth.sbltext import sbl_text

PREFIX = IPv4Prefix.parse("192.0.2.0/24")

_SINGLE = [
    Category.HIJACKED,
    Category.SNOWSHOE,
    Category.KNOWN_SPAM,
    Category.MALICIOUS_HOSTING,
    Category.UNALLOCATED,
]


class TestRoundTrip:
    @pytest.mark.parametrize("category", _SINGLE)
    def test_single_category_recovered(self, category):
        categorizer = Categorizer()
        rng = np.random.default_rng(1)
        for _ in range(20):
            text = sbl_text(frozenset({category}), rng)
            result = categorizer.classify_text(PREFIX, text)
            assert result.categories == {category}, text

    def test_overlap_categories_recovered(self):
        categorizer = Categorizer()
        rng = np.random.default_rng(2)
        pair = frozenset({Category.SNOWSHOE, Category.HIJACKED})
        for _ in range(20):
            text = sbl_text(pair, rng)
            result = categorizer.classify_text(PREFIX, text)
            assert result.categories == pair, text

    def test_keywordless_has_no_keywords(self):
        categorizer = Categorizer()
        rng = np.random.default_rng(3)
        for category in _SINGLE:
            text = sbl_text(frozenset({category}), rng, keywordless=True)
            result = categorizer.classify_text(PREFIX, text)
            assert result.unlabeled, text

    def test_asn_mention_extractable(self):
        rng = np.random.default_rng(4)
        for category in _SINGLE:
            text = sbl_text(frozenset({category}), rng, asn=50509)
            assert 50509 in extract_asns(text), text

    def test_no_asn_means_no_extraction(self):
        rng = np.random.default_rng(5)
        for category in _SINGLE:
            text = sbl_text(frozenset({category}), rng)
            assert extract_asns(text) == (), text

    @given(st.integers(0, 2**31 - 1), st.sampled_from(_SINGLE))
    @settings(max_examples=60, deadline=None)
    def test_any_seed_any_category_classifies(self, seed, category):
        categorizer = Categorizer()
        rng = np.random.default_rng(seed)
        text = sbl_text(frozenset({category}), rng)
        result = categorizer.classify_text(PREFIX, text)
        assert category in result.categories
