"""One day of input change, as a compact replayable event batch.

A :class:`DeltaBatch` is the incremental-ingest unit: everything that
*became knowable* on one calendar day — the DROP snapshot diff (new
listings, removals), the ROA archive diff (published, withdrawn), and
the BGP update slice (announcement episodes starting or ending, plus
the DROP-filtering peers' partial-observation carve-outs).  IRR and RIR
allocation data are journaled registry dumps and treated as fully known
up front, so deltas never carry them.

:class:`DeltaSource` extracts *every* day's batch in one pass over a
world's archives, in canonical store order, which makes batches
deterministic and therefore journal-able: replaying serialized batches
(see :mod:`repro.store.journal`) is byte-equivalent to recomputing
them.  :func:`compute_delta` is the one-day convenience wrapper; a
long-lived caller (the :class:`~repro.ingest.service.Ingestor`) holds a
source so the scan cost is paid once, not once per day.

The knowledge model the whole subsystem shares (see also
:mod:`repro.ingest.asof`):

* DROP and ROA lifetimes use *exclusive* ends ("first day absent"), so
  a removal dated day X is visible in day X's snapshot — an as-of-X
  view keeps it, and the day-X delta carries it.
* BGP route intervals use *inclusive* ends ("last day observed").  The
  day-X update slice is taken to include day X's withdrawals, so an
  interval ending on X is closed by the day-X batch and an as-of-X view
  records ``end == X`` — which is exactly what makes the as-of view at
  the window end identical to the full-knowledge index.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import date

from ..net.prefix import IPv4Prefix
from ..synth.world import World

__all__ = ["DeltaBatch", "DeltaSource", "RouteStart", "compute_delta"]


def _iso(day: date | None) -> str | None:
    return None if day is None else day.isoformat()


def _day(text: str | None) -> date | None:
    return None if text is None else date.fromisoformat(text)


@dataclass(frozen=True, slots=True)
class RouteStart:
    """One announcement episode first observed on the batch day.

    ``end`` is almost always ``None`` (the episode is open as of the
    batch day); a same-day flap closes immediately with ``end == day``.
    ``observers`` are the full-table peer ids, sorted; ``partials`` are
    the carve-outs active as of the batch day, as
    ``(peer_id, start, end-inclusive-or-None)``.
    """

    prefix: IPv4Prefix
    origin: int
    end: date | None
    observers: tuple[int, ...]
    partials: tuple[tuple[int, date, date | None], ...] = ()


@dataclass(frozen=True, slots=True)
class DeltaBatch:
    """Everything that became knowable on ``day``, in canonical order."""

    day: date
    #: New DROP listings: ``(prefix, sbl_id)``.
    drop_added: tuple[tuple[IPv4Prefix, str | None], ...] = ()
    #: DROP removals: ``(prefix, added, sbl_id)`` identifies the episode.
    drop_removed: tuple[tuple[IPv4Prefix, date, str | None], ...] = ()
    #: New ROAs: ``(prefix, asn, max_length, trust_anchor)``.
    roa_added: tuple[tuple[IPv4Prefix, int, int | None, str], ...] = ()
    #: Withdrawn ROAs: ``(prefix, asn, max_length, trust_anchor, created)``.
    roa_removed: tuple[
        tuple[IPv4Prefix, int, int | None, str, date], ...
    ] = ()
    #: Announcement episodes starting today.
    route_started: tuple[RouteStart, ...] = ()
    #: Episodes ending today (started earlier): ``(prefix, origin, start)``.
    route_ended: tuple[tuple[IPv4Prefix, int, date], ...] = ()
    #: Carve-outs starting today on an earlier episode:
    #: ``(prefix, origin, route_start, peer_id, end-or-None)``.
    partial_started: tuple[
        tuple[IPv4Prefix, int, date, int, date | None], ...
    ] = ()
    #: Carve-outs ending today (started earlier):
    #: ``(prefix, origin, route_start, peer_id, partial_start)``.
    partial_ended: tuple[
        tuple[IPv4Prefix, int, date, int, date], ...
    ] = ()

    def __len__(self) -> int:
        """Total event count (what the counters and summaries report)."""
        return (
            len(self.drop_added)
            + len(self.drop_removed)
            + len(self.roa_added)
            + len(self.roa_removed)
            + len(self.route_started)
            + len(self.route_ended)
            + len(self.partial_started)
            + len(self.partial_ended)
        )

    # -- serialization (the journal payload) ---------------------------------

    def to_dict(self) -> dict:
        """A JSON-able dict; :meth:`from_dict` round-trips it exactly."""
        return {
            "day": self.day.isoformat(),
            "drop_added": [
                [str(p), sbl] for p, sbl in self.drop_added
            ],
            "drop_removed": [
                [str(p), added.isoformat(), sbl]
                for p, added, sbl in self.drop_removed
            ],
            "roa_added": [
                [str(p), asn, ml, ta] for p, asn, ml, ta in self.roa_added
            ],
            "roa_removed": [
                [str(p), asn, ml, ta, created.isoformat()]
                for p, asn, ml, ta, created in self.roa_removed
            ],
            "route_started": [
                [
                    str(r.prefix),
                    r.origin,
                    _iso(r.end),
                    list(r.observers),
                    [[pid, s.isoformat(), _iso(e)]
                     for pid, s, e in r.partials],
                ]
                for r in self.route_started
            ],
            "route_ended": [
                [str(p), origin, start.isoformat()]
                for p, origin, start in self.route_ended
            ],
            "partial_started": [
                [str(p), origin, start.isoformat(), pid, _iso(end)]
                for p, origin, start, pid, end in self.partial_started
            ],
            "partial_ended": [
                [str(p), origin, start.isoformat(), pid, ps.isoformat()]
                for p, origin, start, pid, ps in self.partial_ended
            ],
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "DeltaBatch":
        """The inverse of :meth:`to_dict` (journal replay)."""
        return cls(
            day=date.fromisoformat(raw["day"]),
            drop_added=tuple(
                (IPv4Prefix.parse(p), sbl) for p, sbl in raw["drop_added"]
            ),
            drop_removed=tuple(
                (IPv4Prefix.parse(p), date.fromisoformat(added), sbl)
                for p, added, sbl in raw["drop_removed"]
            ),
            roa_added=tuple(
                (IPv4Prefix.parse(p), asn, ml, ta)
                for p, asn, ml, ta in raw["roa_added"]
            ),
            roa_removed=tuple(
                (IPv4Prefix.parse(p), asn, ml, ta, date.fromisoformat(c))
                for p, asn, ml, ta, c in raw["roa_removed"]
            ),
            route_started=tuple(
                RouteStart(
                    prefix=IPv4Prefix.parse(p),
                    origin=origin,
                    end=_day(end),
                    observers=tuple(observers),
                    partials=tuple(
                        (pid, date.fromisoformat(s), _day(e))
                        for pid, s, e in partials
                    ),
                )
                for p, origin, end, observers, partials in raw[
                    "route_started"
                ]
            ),
            route_ended=tuple(
                (IPv4Prefix.parse(p), origin, date.fromisoformat(s))
                for p, origin, s in raw["route_ended"]
            ),
            partial_started=tuple(
                (
                    IPv4Prefix.parse(p),
                    origin,
                    date.fromisoformat(s),
                    pid,
                    _day(end),
                )
                for p, origin, s, pid, end in raw["partial_started"]
            ),
            partial_ended=tuple(
                (
                    IPv4Prefix.parse(p),
                    origin,
                    date.fromisoformat(s),
                    pid,
                    date.fromisoformat(ps),
                )
                for p, origin, s, pid, ps in raw["partial_ended"]
            ),
        )


class _DayEvents:
    """Mutable per-day accumulator behind :class:`DeltaSource`."""

    __slots__ = (
        "drop_added",
        "drop_removed",
        "roa_added",
        "roa_removed",
        "route_started",
        "route_ended",
        "partial_started",
        "partial_ended",
    )

    def __init__(self) -> None:
        self.drop_added: list[tuple[IPv4Prefix, str | None]] = []
        self.drop_removed: list[tuple[IPv4Prefix, date, str | None]] = []
        self.roa_added: list[tuple[IPv4Prefix, int, int | None, str]] = []
        self.roa_removed: list[
            tuple[IPv4Prefix, int, int | None, str, date]
        ] = []
        self.route_started: list[RouteStart] = []
        self.route_ended: list[tuple[IPv4Prefix, int, date]] = []
        self.partial_started: list[
            tuple[IPv4Prefix, int, date, int, date | None]
        ] = []
        self.partial_ended: list[
            tuple[IPv4Prefix, int, date, int, date]
        ] = []


class DeltaSource:
    """All of a world's daily batches, extracted in a single pass.

    Every archived episode is registered on the days it produces
    events: a DROP listing on its ``added`` and ``removed`` days, a ROA
    on ``created`` and ``removed``, an announcement interval on its
    ``start`` (as a :class:`RouteStart`, with the carve-outs already
    active that day folded in), its inclusive ``end``, and each later
    carve-out edge.  Iteration follows canonical store order (DROP
    prefixes in address order, ROA records and route intervals in
    trie/bucket order), so :meth:`batch` returns exactly what the
    original per-day scan produced — same events, same order — while
    the whole-world walk happens once instead of once per day.
    """

    __slots__ = ("_days",)

    def __init__(self, world: World) -> None:
        days: dict[date, _DayEvents] = {}

        def at(day: date) -> _DayEvents:
            bucket = days.get(day)
            if bucket is None:
                bucket = days[day] = _DayEvents()
            return bucket

        for prefix in world.drop.unique_prefixes():
            for episode in world.drop.episodes_for(prefix):
                at(episode.added).drop_added.append(
                    (prefix, episode.sbl_id)
                )
                if episode.removed is not None:
                    at(episode.removed).drop_removed.append(
                        (prefix, episode.added, episode.sbl_id)
                    )

        for record in world.roas.records():
            roa = record.roa
            at(record.created).roa_added.append(
                (roa.prefix, roa.asn, roa.max_length, roa.trust_anchor)
            )
            if record.removed is not None:
                at(record.removed).roa_removed.append(
                    (
                        roa.prefix,
                        roa.asn,
                        roa.max_length,
                        roa.trust_anchor,
                        record.created,
                    )
                )

        full_table = world.peers.full_table_peer_ids()
        for interval in world.bgp.all_intervals():
            day0 = interval.start
            at(day0).route_started.append(
                RouteStart(
                    prefix=interval.prefix,
                    origin=interval.origin,
                    end=day0 if interval.end == day0 else None,
                    observers=tuple(
                        sorted(frozenset(interval.observers) & full_table)
                    ),
                    partials=tuple(
                        (p.peer_id, p.start,
                         None if p.end is None or p.end > day0 else p.end)
                        for p in interval.partial_observers
                        if p.peer_id in full_table and p.start <= day0
                    ),
                )
            )
            if interval.end is not None and interval.end != day0:
                at(interval.end).route_ended.append(
                    (interval.prefix, interval.origin, day0)
                )
            for p in interval.partial_observers:
                if p.peer_id not in full_table:
                    continue
                if p.start > day0:
                    # A same-day flap closes in place; anything longer
                    # is an open start matched by a partial_ended below.
                    at(p.start).partial_started.append(
                        (
                            interval.prefix,
                            interval.origin,
                            day0,
                            p.peer_id,
                            p.end if p.end == p.start else None,
                        )
                    )
                if (
                    p.end is not None
                    and p.end > p.start
                    and p.end > day0
                ):
                    at(p.end).partial_ended.append(
                        (
                            interval.prefix,
                            interval.origin,
                            day0,
                            p.peer_id,
                            p.start,
                        )
                    )

        self._days = days

    def batch(self, day: date) -> DeltaBatch:
        """The day's batch (empty, not an error, for a quiet day)."""
        events = self._days.get(day)
        if events is None:
            return DeltaBatch(day=day)
        return DeltaBatch(
            day=day,
            drop_added=tuple(events.drop_added),
            drop_removed=tuple(events.drop_removed),
            roa_added=tuple(events.roa_added),
            roa_removed=tuple(events.roa_removed),
            route_started=tuple(events.route_started),
            route_ended=tuple(events.route_ended),
            partial_started=tuple(events.partial_started),
            partial_ended=tuple(events.partial_ended),
        )


def compute_delta(world: World, day: date) -> DeltaBatch:
    """The day's batch, extracted from the world archives.

    One-shot convenience over :class:`DeltaSource` — it scans the whole
    world, so callers advancing day after day should hold a source
    instead.
    """
    return DeltaSource(world).batch(day)
