"""The --timings contract: same schema-1 JSON, now derived from spans.

The CLI-level golden test (tests/test_golden.py) pins the schema on a
real run; here the dict is pinned byte-for-byte on deterministic inputs,
plus the canonical counter mirroring.
"""

import importlib
import json

import pytest

from repro.obs import Instrumentation
from repro.runtime.faults import InjectedIOError, fault_point, injected


class TestTimingsView:
    def _loaded(self):
        instr = Instrumentation()
        instr.record("platform", 0.25, group="build")
        instr.record("cache-load", 0.125, group="cache")
        instr.record("fig1", 0.5, group="experiment")
        instr.record("fig5", 1.0, group="experiment")
        instr.incr("world_cache_hits")
        instr.annotate("jobs", 4)
        instr.warn("took over stale cache lock")
        return instr

    def test_schema1_dict_golden(self):
        assert self._loaded().to_dict() == {
            "schema": 1,
            "counters": {"world_cache_hits": 1},
            "info": {"jobs": 4},
            "warnings": ["took over stale cache lock"],
            "stages": {
                "build": [{"name": "platform", "seconds": 0.25}],
                "cache": [{"name": "cache-load", "seconds": 0.125}],
                "experiment": [
                    {"name": "fig1", "seconds": 0.5},
                    {"name": "fig5", "seconds": 1.0},
                ],
            },
            "total_seconds": 1.875,
        }

    def test_to_json_round_trip(self):
        instr = self._loaded()
        assert json.loads(instr.to_json()) == instr.to_dict()

    def test_ungrouped_spans_stay_out_of_timings(self):
        instr = self._loaded()
        with instr.tracer.span("adopted-worker-span", experiment="fig1"):
            pass
        payload = instr.to_dict()
        assert payload["total_seconds"] == 1.875
        names = [
            stage["name"]
            for stages in payload["stages"].values()
            for stage in stages
        ]
        assert "adopted-worker-span" not in names

    def test_stage_also_lands_in_histogram(self):
        instr = Instrumentation()
        with instr.stage("platform", group="build"):
            pass
        histogram = instr.registry.get("repro_run_stage_seconds")
        assert histogram.count(group="build", stage="platform") == 1


class TestCanonicalCounters:
    def test_known_counter_mirrors_to_registry(self):
        instr = Instrumentation()
        instr.incr("world_cache_hits", 2)
        assert instr.counters == {"world_cache_hits": 2}
        assert instr.registry.get("repro_cache_hits_total").value() == 2

    def test_pattern_families_fold_into_labels(self):
        instr = Instrumentation()
        instr.incr("serve_status_requests", 3)
        instr.incr("serve_batch_requests")
        instr.incr("serve_status_us_total", 1234)
        requests = instr.registry.get("repro_server_requests_total")
        assert requests.value(endpoint="status") == 3
        assert requests.value(endpoint="batch") == 1
        micros = instr.registry.get("repro_server_request_microseconds_total")
        assert micros.value(endpoint="status") == 1234

    def test_unknown_counter_falls_back_to_adhoc(self):
        instr = Instrumentation()
        instr.incr("something_bespoke")
        adhoc = instr.registry.get("repro_adhoc_total")
        assert adhoc.value(counter="something_bespoke") == 1

    def test_core_families_declared_up_front(self):
        exposition = Instrumentation().registry.expose()
        for name in (
            "repro_cache_hits_total",
            "repro_runner_worker_lost_total",
            "repro_faults_total",
            "repro_server_requests_total",
        ):
            assert f"# TYPE {name} counter" in exposition

    def test_fault_trip_increments_matching_counter(self):
        instr = Instrumentation()
        with injected("io-error@obs.test.site"):
            with pytest.raises(InjectedIOError):
                fault_point("obs.test.site", instrumentation=instr)
        assert instr.counters["fault_io-error"] == 1
        faults = instr.registry.get("repro_faults_total")
        assert faults.value(kind="io-error") == 1
        assert instr.registry.get("repro_faults_injected_total").value() == 1


class TestShimRetired:
    def test_old_import_path_is_gone(self):
        # The repro.runtime.instrument shim served its one-release
        # deprecation window and was removed; the supported homes are
        # repro.obs and the repro.runtime re-export.
        with pytest.raises(ModuleNotFoundError):
            importlib.import_module("repro.runtime.instrument")

    def test_runtime_reexport_still_works(self):
        from repro.runtime import Instrumentation as reexported

        assert reexported is Instrumentation
