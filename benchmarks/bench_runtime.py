"""Runtime subsystem costs: world cache and parallel experiment fan-out.

The cache benches measure the cold (build + store) and warm (load) paths
so the bench trajectory records when caching starts paying for a scale;
the runner benches pin the parallel dispatch overhead against the serial
registry sweep on the same world.
"""

from repro.reporting import EXPERIMENTS
from repro.runtime import WorldCache, run_experiments, world_cache_key
from repro.synth import ScenarioConfig


def bench_world_cache_cold(benchmark, tmp_path_factory):
    root = tmp_path_factory.mktemp("cache-cold")

    def cold():
        cache = WorldCache(root / world_cache_key(ScenarioConfig.tiny()))
        return cache.fetch(ScenarioConfig.tiny(), refresh=True)

    outcome = benchmark.pedantic(cold, rounds=1, iterations=1)
    assert outcome.status == "refresh"


def bench_world_cache_warm(benchmark, tmp_path_factory):
    cache = WorldCache(tmp_path_factory.mktemp("cache-warm"))
    assert cache.fetch(ScenarioConfig.tiny()).status == "miss"

    outcome = benchmark.pedantic(
        lambda: cache.fetch(ScenarioConfig.tiny()), rounds=1, iterations=1
    )
    assert outcome.status == "hit"
    assert len(outcome.world.drop.unique_prefixes()) == 712


def bench_experiments_serial(benchmark, world, entries):
    outcome = benchmark.pedantic(
        lambda: run_experiments(
            world, list(EXPERIMENTS), jobs=1, entries=entries
        ),
        rounds=1,
        iterations=1,
    )
    assert outcome.ok
    assert len(outcome.reports) == len(EXPERIMENTS)


def bench_experiments_parallel_jobs4(benchmark, world, entries):
    outcome = benchmark.pedantic(
        lambda: run_experiments(
            world, list(EXPERIMENTS), jobs=4, entries=entries
        ),
        rounds=1,
        iterations=1,
    )
    assert outcome.ok
    assert len(outcome.reports) == len(EXPERIMENTS)
