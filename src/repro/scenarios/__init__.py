"""Composable scenario DSL: attack families x defense deployments x scale.

The DSL (:mod:`~repro.scenarios.spec`) declares *what* a scenario is —
frozen, canonically-serializable pieces that hash to stable
content-addressed keys.  :mod:`~repro.scenarios.playbooks` carries the
paper's five playbooks as compositions over a fixed build pipeline, and
:mod:`~repro.scenarios.compose` turns a :class:`Scenario` into a built
:class:`~repro.synth.world.World` with director ground truth attached.
:mod:`~repro.scenarios.metrics` scores defense effectiveness against
that truth.  The sweep engine (:mod:`repro.sweep`) fans grids of these
scenarios across the parallel runner.
"""

from .compose import (
    SCENARIO_VERSION,
    AttackTruth,
    ScenarioDirector,
    ScenarioTruth,
    build_scenario_world,
)
from .metrics import evaluate_scenario
from .playbooks import (
    PAPER_PLAYBOOKS,
    PIPELINE,
    Playbook,
    PlaybookContext,
    apply_playbooks,
)
from .spec import (
    ATTACK_FAMILIES,
    DEFENSE_KINDS,
    As0Misconfig,
    AttackSpec,
    DefenseSpec,
    DropSubscription,
    MaxLengthAbuse,
    PrefixHijack,
    RoaDowngrade,
    RouteServerFiltering,
    RovDeployment,
    Scenario,
    ScenarioSpecError,
    SubPrefixHijack,
    WorldScale,
)

__all__ = [
    "ATTACK_FAMILIES",
    "DEFENSE_KINDS",
    "PAPER_PLAYBOOKS",
    "PIPELINE",
    "SCENARIO_VERSION",
    "As0Misconfig",
    "AttackSpec",
    "AttackTruth",
    "DefenseSpec",
    "DropSubscription",
    "MaxLengthAbuse",
    "Playbook",
    "PlaybookContext",
    "PrefixHijack",
    "RoaDowngrade",
    "RouteServerFiltering",
    "RovDeployment",
    "Scenario",
    "ScenarioDirector",
    "ScenarioSpecError",
    "ScenarioTruth",
    "SubPrefixHijack",
    "WorldScale",
    "apply_playbooks",
    "build_scenario_world",
    "evaluate_scenario",
]
