"""RouteViews-like collectors and peers.

The paper uses "BGP announcement data recorded by all 36 RouteViews
collectors".  We model that observation platform as a set of named
collectors, each with BGP peers.  A peer is *full-table* if it sends the
collector its complete routing table; visibility fractions in Figure 2 are
computed over full-table peers.  A peer may also apply a route filter (the
paper found three peers filtering DROP-listed prefixes); filtering is a
property of the generated data, not of these descriptors — the synth world
consults :attr:`Peer.filters_drop` when deciding which observations each
peer records.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

__all__ = ["Collector", "Peer", "PeerRegistry", "ROUTEVIEWS_COLLECTOR_NAMES"]

#: The RouteViews collector fleet as of the study period (36 collectors).
ROUTEVIEWS_COLLECTOR_NAMES: tuple[str, ...] = (
    "route-views2", "route-views3", "route-views4", "route-views5",
    "route-views6", "route-views.amsix", "route-views.chicago",
    "route-views.chile", "route-views.eqix", "route-views.flix",
    "route-views.fortaleza", "route-views.gixa", "route-views.gorex",
    "route-views.isc", "route-views.kixp", "route-views.jinx",
    "route-views.linx", "route-views.napafrica", "route-views.nwax",
    "route-views.phoix", "route-views.telxatl", "route-views.wide",
    "route-views.sydney", "route-views.saopaulo", "route-views2.saopaulo",
    "route-views.sg", "route-views.perth", "route-views.peru",
    "route-views.sfmix", "route-views.siex", "route-views.soxrs",
    "route-views.mwix", "route-views.rio", "route-views.bdix",
    "route-views.bknix", "route-views.uaeix",
)


@dataclass(frozen=True, slots=True)
class Peer:
    """One BGP peer of a collector."""

    peer_id: int
    asn: int
    collector: str
    full_table: bool = True
    filters_drop: bool = False


@dataclass(slots=True)
class Collector:
    """A route collector with an ordered list of peers."""

    name: str
    peers: list[Peer] = field(default_factory=list)

    def add_peer(self, peer: Peer) -> None:
        if peer.collector != self.name:
            raise ValueError(
                f"peer {peer.peer_id} belongs to {peer.collector}, "
                f"not {self.name}"
            )
        self.peers.append(peer)


class PeerRegistry:
    """The full observation platform: collectors and their peers.

    Peer ids are globally unique integers so that observation sets in the
    RIB store can be stored as compact frozensets of ints.
    """

    def __init__(self) -> None:
        self._collectors: dict[str, Collector] = {}
        self._peers: dict[int, Peer] = {}

    def add_collector(self, name: str) -> Collector:
        """Create (or return) the collector with the given name."""
        if name not in self._collectors:
            self._collectors[name] = Collector(name)
        return self._collectors[name]

    def add_peer(
        self,
        asn: int,
        collector: str,
        *,
        full_table: bool = True,
        filters_drop: bool = False,
    ) -> Peer:
        """Register a new peer on ``collector`` and return it."""
        peer = Peer(
            peer_id=len(self._peers),
            asn=asn,
            collector=collector,
            full_table=full_table,
            filters_drop=filters_drop,
        )
        self._peers[peer.peer_id] = peer
        self.add_collector(collector).add_peer(peer)
        return peer

    # -- queries ----------------------------------------------------------

    def collectors(self) -> Iterator[Collector]:
        """All collectors, in insertion order."""
        yield from self._collectors.values()

    def collector(self, name: str) -> Collector:
        """The collector with the given name (KeyError if unknown)."""
        return self._collectors[name]

    def peers(self) -> Iterator[Peer]:
        """All peers across all collectors."""
        yield from self._peers.values()

    def peer(self, peer_id: int) -> Peer:
        """The peer with the given id (KeyError if unknown)."""
        return self._peers[peer_id]

    def full_table_peer_ids(self) -> frozenset[int]:
        """Ids of all full-table peers (the Figure 2 denominator)."""
        return frozenset(
            p.peer_id for p in self._peers.values() if p.full_table
        )

    def peer_ids(self) -> frozenset[int]:
        """Ids of all peers."""
        return frozenset(self._peers)

    def __len__(self) -> int:
        return len(self._peers)
