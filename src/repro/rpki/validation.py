"""RFC 6811 route origin validation.

A route (prefix, origin) is:

* ``VALID`` if any trusted ROA authorizes it (covering prefix, length
  within maxLength, matching ASN);
* ``INVALID`` if at least one trusted ROA covers the prefix but none
  authorizes the route (this includes everything under an AS0 ROA);
* ``NOT_FOUND`` if no trusted ROA covers the prefix.

Validation is always relative to a :class:`~repro.rpki.tal.TalSet`: the
same announcement can be NOT_FOUND under the default TALs and INVALID
under a configuration that adds the RIR AS0 TALs — the distinction at the
heart of §6.2.2.
"""

from __future__ import annotations

from enum import Enum
from typing import Iterable

from ..net.prefix import IPv4Prefix
from .roa import Roa
from .tal import TalSet

__all__ = ["RouteValidity", "validate_route"]


class RouteValidity(Enum):
    """RFC 6811 route origin validation states."""

    VALID = "valid"
    INVALID = "invalid"
    NOT_FOUND = "not-found"

    def __str__(self) -> str:
        return self.value


def validate_route(
    prefix: IPv4Prefix,
    origin: int,
    roas: Iterable[Roa],
    tals: TalSet | None = None,
) -> RouteValidity:
    """Validate one announcement against a set of ROAs.

    ``roas`` may be any iterable of candidate ROAs (callers typically pass
    the covering set from an archive query, but passing extra non-covering
    ROAs is harmless).  ``tals`` defaults to the out-of-the-box validator
    configuration.
    """
    tals = tals or TalSet.default()
    covered = False
    for roa in roas:
        if not tals.trusts(roa.trust_anchor):
            continue
        if not roa.covers(prefix):
            continue
        covered = True
        if roa.authorizes(prefix, origin):
            return RouteValidity.VALID
    return RouteValidity.INVALID if covered else RouteValidity.NOT_FOUND
