"""The sharded parallel build is invisible: byte-identical worlds.

``build_world(cfg, jobs=N)`` fans the background shards out over a
process pool, but the result must be indistinguishable from the serial
build — the world cache keys only on (config, generator version), so a
cache entry written by a parallel build must satisfy a serial reader
and vice versa.  These tests pin that identity at the archive level
(every persisted file byte-for-byte equal) and pin the shard RNG
stream derivation against collisions across scenario seeds.
"""

import os

import numpy as np
import pytest

from repro.synth import ScenarioConfig, build_world, save_world
from repro.synth.builder import background_shard_seed


def _archive_bytes(world, directory):
    save_world(world, directory, drop_step_days=1)
    return {
        path.name: path.read_bytes()
        for path in sorted(directory.iterdir())
        if path.is_file()
    }


class TestParallelBuildIdentity:
    @pytest.mark.parametrize("scale", ["tiny", "small"])
    def test_jobs4_matches_serial(self, scale, tmp_path):
        config = getattr(ScenarioConfig, scale)()
        serial = build_world(config)
        parallel = build_world(config, jobs=4)
        serial_files = _archive_bytes(serial, tmp_path / "serial")
        parallel_files = _archive_bytes(parallel, tmp_path / "parallel")
        assert serial_files.keys() == parallel_files.keys()
        for name, payload in serial_files.items():
            assert parallel_files[name] == payload, name

    def test_jobs_does_not_change_truth(self):
        config = ScenarioConfig.tiny()
        serial = build_world(config)
        parallel = build_world(config, jobs=3)
        assert serial.truth == parallel.truth


class TestShardSeedStreams:
    def test_no_collisions_across_seeds(self):
        """Satellite: distinct (seed, region, shard) → distinct streams.

        Covers scenario seeds 0–31 with a handful of regions and shards
        each — enough to catch any aliasing between the three entropy
        coordinates (e.g. seed 1/shard 0 colliding with seed 0/shard 1).
        """
        seen = {}
        for seed in range(32):
            for region in range(4):
                for shard in range(4):
                    sequence = background_shard_seed(seed, region, shard)
                    state = np.random.default_rng(sequence).integers(
                        0, 2**63, size=4
                    )
                    fingerprint = tuple(int(v) for v in state)
                    assert fingerprint not in seen, (
                        (seed, region, shard),
                        seen[fingerprint],
                    )
                    seen[fingerprint] = (seed, region, shard)

    def test_stream_is_deterministic(self):
        a = np.random.default_rng(background_shard_seed(7, 1, 2))
        b = np.random.default_rng(background_shard_seed(7, 1, 2))
        assert list(a.integers(0, 100, size=8)) == list(
            b.integers(0, 100, size=8)
        )


class TestParallelBuildCost:
    """Satellite: the shard merge goes through the packed binary path,
    so fanning out must not regress the build.  The wall-clock check
    only means something with real parallel hardware; the wire-size
    check (the mechanism that pays for the pool overhead) is
    deterministic and always runs."""

    def test_packed_shard_smaller_than_pickle(self, monkeypatch):
        import pickle

        from repro.store.shards import pack_background_shard
        from repro.synth.builder import WorldBuilder

        captured = {}
        original = WorldBuilder._map_background_shards

        def spying(self, tasks):
            results = original(self, tasks)
            captured["result"] = results[0]
            return results

        monkeypatch.setattr(
            WorldBuilder, "_map_background_shards", spying
        )
        build_world(ScenarioConfig.tiny())
        result = captured["result"]
        packed = pack_background_shard(result)
        pickled = pickle.dumps(result)
        assert len(packed) < len(pickled)

    @pytest.mark.skipif(
        (os.cpu_count() or 1) < 2,
        reason="needs >=2 CPUs for a meaningful wall-clock comparison",
    )
    def test_jobs4_not_slower_than_serial_small(self):
        import time

        config = ScenarioConfig.small()
        build_world(config)  # warm imports/allocators outside the clock
        start = time.perf_counter()
        build_world(config)
        serial = time.perf_counter() - start
        start = time.perf_counter()
        build_world(config, jobs=4)
        parallel = time.perf_counter() - start
        # Generous tolerance: the point is catching a pathological merge
        # path (e.g. re-pickling object graphs), not micro-benchmarking.
        assert parallel <= serial * 1.5
