"""World builder: platform, address-space geography, and bulk populations.

The builder lays the world down in stages (each stage a method, each with
its own child RNG so stages stay reproducible independently):

1. the RouteViews-like observation platform (§3), including the three
   DROP-filtering peers of §4.1;
2. RIR pools and their draining free pools (Figure 7);
3. the RPKI-signed space populations of Figure 5, including the Amazon /
   Prudential / Alibaba unrouted-signed holders of §6.2.1;
4. the allocated-but-unrouted-unsigned space (Figure 5, ARIN-heavy);
5. the "never on DROP" background populations per region (Table 1);
6. the DROP population itself and the Figure 4 case study (in
   :mod:`repro.scenarios.playbooks`);
7. the RIR AS0 trust anchors' ROAs over unallocated space (§6.2.2).

Address space is carved from one global cursor so nothing ever overlaps;
see :class:`SpaceCarver`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from datetime import date, timedelta

import numpy as np

from ..bgp.collector import ROUTEVIEWS_COLLECTOR_NAMES, PeerRegistry
from ..bgp.messages import ASPath
from ..bgp.ribs import PartialObservation, RouteInterval, RouteIntervalStore
from ..drop.droplist import DropArchive
from ..drop.sbl import SblDatabase
from ..irr.radb import IrrDatabase
from ..net.prefix import AddressRange, IPv4Prefix
from ..net.timeline import month_starts
from ..rirstats.registry import ResourceRegistry
from ..rpki.archive import RoaArchive
from ..rpki.as0 import rir_as0_policy_start, rir_as0_tal
from ..rpki.roa import Roa, RoaRecord
from .config import ScenarioConfig
from .topology import AsTopology
from .world import GroundTruth, World

__all__ = [
    "GENERATOR_VERSION",
    "SpaceCarver",
    "WorldBuilder",
    "background_shard_seed",
    "build_world",
]

#: Version of the generation algorithm.  Bump whenever a builder change
#: alters the produced world for an unchanged config — the world cache
#: keys on it, so stale cached worlds invalidate automatically.
#: v2: the background stage generates in fixed-size shards with
#: per-shard RNG streams and pre-carved address blocks, so it can fan
#: out over a process pool while staying byte-identical to serial.
GENERATOR_VERSION = 2

#: /8s the carver never hands out: special-purpose space plus the blocks
#: used verbatim by the Figure 4 case study and the §6.2.1 operator-AS0
#: story (132/8, 187/8, 191/8, 200/8, 45/8 — all LACNIC in the paper).
_RESERVED_SLASH8 = {0, 10, 45, 127, 132, 187, 191, 200}
_LAST_UNICAST_SLASH8 = 223


class SpaceCarver:
    """Hands out non-overlapping aligned prefixes from the unicast space.

    A single forward-moving cursor guarantees that no two carve calls ever
    overlap, regardless of which stage asks; reserved /8s (0, 10, 127) and
    multicast space are skipped.
    """

    def __init__(self) -> None:
        self._cursor = 1 << 24  # 1.0.0.0

    def carve(self, length: int) -> IPv4Prefix:
        """The next free prefix of the given length."""
        size = 1 << (32 - length)
        cursor = (self._cursor + size - 1) & ~(size - 1)  # align up
        while True:
            first_slash8 = cursor >> 24
            last_slash8 = (cursor + size - 1) >> 24
            if last_slash8 > _LAST_UNICAST_SLASH8:
                raise RuntimeError("carver exhausted unicast IPv4 space")
            blocked = next(
                (
                    s8
                    for s8 in range(first_slash8, last_slash8 + 1)
                    if s8 in _RESERVED_SLASH8
                ),
                None,
            )
            if blocked is None:
                break
            cursor = (blocked + 1) << 24
            cursor = (cursor + size - 1) & ~(size - 1)
        self._cursor = cursor + size
        return IPv4Prefix(cursor, length)

    def carve_range(self, num_addresses: int, *, align_length: int = 16) -> AddressRange:
        """A contiguous range of addresses, aligned to a /``align_length``.

        The range need not be a CIDR block (RIR pools are not).
        """
        size = 1 << (32 - align_length)
        count = math.ceil(num_addresses / size) * size
        first = self.carve(align_length)
        start = first.network
        remaining = count - size
        while remaining > 0:
            nxt = self.carve(align_length)
            if nxt.network != start + (count - remaining):
                # A reserved /8 interrupted contiguity: restart there.
                start = nxt.network
                remaining = count - size
            else:
                remaining -= size
        return AddressRange(start, start + count)

    def carve_slash8_equiv(
        self, slash8: float, chunk_length: int
    ) -> list[IPv4Prefix]:
        """Prefixes totalling ~``slash8`` /8 equivalents, in equal chunks."""
        chunk_addresses = 1 << (32 - chunk_length)
        chunks = max(1, round(slash8 * (1 << 24) / chunk_addresses))
        return [self.carve(chunk_length) for _ in range(chunks)]


# -- background sharding -------------------------------------------------------
#
# The background stage is the bulk of a build (~196K prefixes at paper
# scale), so it generates in fixed-size shards: each shard is a pure
# function of its task — own RNG stream, own pre-carved address block,
# own ASN block — and the parent merges results in task order.  Serial
# and parallel builds execute the *same* shard functions, so
# ``build_world(cfg, jobs=N)`` is byte-identical to ``jobs=1`` by
# construction (and pinned by the golden tests).

#: Prefixes per background shard.  Must stay a multiple of 64 (the
#: allocation-block grouping) and 4 (the ASN reuse grouping) so shard
#: boundaries never split a group.
_BACKGROUND_SHARD_PREFIXES = 4096

#: Worst-case addresses one background prefix consumes from its shard
#: block: a /22 (1024 addresses) plus up to a /22 of alignment slack.
_BACKGROUND_ADDRS_PER_PREFIX = 2048

#: Background ASNs live in a dedicated range so shards never contend on
#: the builder's sequential ASN cursor: one block per region, the ASN
#: derived from the region-global prefix index.
_BACKGROUND_ASN_BASE = 1_000_000
_BACKGROUND_ASN_STRIDE = 100_000

#: Entropy domain tag separating background shard streams from every
#: other consumer of the scenario seed.
_BACKGROUND_STREAM = 0xB6


def background_shard_seed(
    seed: int, region_index: int, shard_index: int
) -> np.random.SeedSequence:
    """The RNG stream for one background shard.

    Distinct ``(seed, region, shard)`` triples map to distinct entropy
    tuples, so no two shards of any world — across scenario seeds — ever
    draw from the same stream (pinned by the shard-seed collision test).
    """
    return np.random.SeedSequence(
        entropy=(seed, _BACKGROUND_STREAM, region_index, shard_index)
    )


def _largest_remainder(total: int, sizes: list[int]) -> list[int]:
    """Split ``total`` across buckets proportionally, summing exactly.

    Keeps the per-region signer count at ``round(count * rate)`` no
    matter how the region shards, so paper rates stay exact.
    """
    grand = sum(sizes)
    shares = [total * size / grand for size in sizes]
    floors = [int(share) for share in shares]
    order = sorted(
        range(len(sizes)),
        key=lambda i: (-(shares[i] - floors[i]), i),
    )
    for i in order[: total - sum(floors)]:
        floors[i] += 1
    return floors


@dataclass(frozen=True)
class _BackgroundShardTask:
    """Everything one background shard needs; picklable for the pool.

    The shard-invariant heavyweights — the transit-core topology and
    the platform observer set — deliberately do *not* ride on the task:
    they ship once per worker through the pool initializer (see
    :func:`_set_shard_context`), not once per task through the pickle
    pipe.
    """

    seed: int
    region_index: int
    shard_index: int
    rir: str
    start_index: int  # region-global index of the shard's first prefix
    count: int
    signer_quota: int
    block_start: int  # first address of the pre-carved shard block
    asn_base: int
    history: date
    window_start: date
    window_end: date
    maxlength_usage_rate: float


@dataclass(frozen=True)
class _BackgroundShardResult:
    """A shard's output, merged into the builder in task order."""

    routes: tuple[RouteInterval, ...]
    roas: tuple[RoaRecord, ...]
    #: ``(start, end, holder)`` allocation blocks.
    allocations: tuple[tuple[int, int, str], ...]
    #: ``(asn, providers)`` edge networks to adopt into the topology.
    attachments: tuple[tuple[int, tuple[int, ...]], ...]


#: Shard-invariant state every background shard reads: ``(transit-core
#: topology, platform observer ids)``.  Set once per process — in the
#: parent before planning, and per pool worker via the initializer.
_SHARD_CONTEXT: tuple[AsTopology, frozenset[int]] | None = None


def _set_shard_context(
    topology: AsTopology, observers: frozenset[int]
) -> None:
    """Install the shard context (module-level: the pool initializer)."""
    global _SHARD_CONTEXT
    _SHARD_CONTEXT = (topology, observers)


def _run_background_shard(
    task: _BackgroundShardTask,
) -> _BackgroundShardResult:
    """Generate one shard of the background population.

    Pure function of the task plus the process's shard context (the
    same ``(topology, observers)`` in every process, so serial and
    parallel runs stay byte-identical).
    """
    assert _SHARD_CONTEXT is not None, "shard context not installed"
    topology, observers = _SHARD_CONTEXT
    rng = np.random.default_rng(
        background_shard_seed(task.seed, task.region_index, task.shard_index)
    )
    signer_flags = np.zeros(task.count, dtype=bool)
    signer_flags[: task.signer_quota] = True
    rng.shuffle(signer_flags)
    day_span = (task.window_end - task.window_start).days
    routes: list[RouteInterval] = []
    roas: list[RoaRecord] = []
    allocations: list[tuple[int, int, str]] = []
    attachments: list[tuple[int, tuple[int, ...]]] = []

    cursor = task.block_start
    network_asn = 0
    network_path: ASPath | None = None
    alloc_start: int | None = None
    alloc_end = 0
    for index in range(task.count):
        global_index = task.start_index + index
        if global_index % 4 == 0:
            network_asn = task.asn_base + global_index // 4
            providers = topology.draw_edge_providers(rng)
            attachments.append((network_asn, providers))
            network_path = topology.path_via_providers(
                network_asn, providers, rng
            )
        assert network_path is not None  # shard starts on a 4-boundary
        length = int(rng.integers(22, 25))
        size = 1 << (32 - length)
        network = (cursor + size - 1) & ~(size - 1)
        cursor = network + size
        prefix = IPv4Prefix(network, length)
        if alloc_start is None:
            alloc_start = network
        alloc_end = network + size
        routes.append(
            RouteInterval(
                prefix=prefix,
                path=network_path,
                start=task.history,
                end=None,
                observers=observers,
            )
        )
        if signer_flags[index]:
            signed_on = task.window_start + timedelta(
                days=int(rng.integers(0, day_span + 1))
            )
            max_length = None
            if rng.random() < task.maxlength_usage_rate:
                if rng.random() < 0.16:
                    # The defended minority (Gilad et al. found 84%
                    # vulnerable): maxLength one longer, and both
                    # halves actually announced.
                    max_length = min(32, length + 1)
                    if max_length > length:
                        for half in prefix.subnets(max_length):
                            routes.append(
                                RouteInterval(
                                    prefix=half,
                                    path=network_path,
                                    start=task.history,
                                    end=None,
                                    observers=observers,
                                )
                            )
                else:
                    max_length = min(
                        32, length + int(rng.integers(1, 9))
                    )
            roas.append(
                RoaRecord(
                    roa=Roa(
                        prefix=prefix,
                        asn=network_asn,
                        max_length=max_length,
                        trust_anchor=task.rir,
                    ),
                    created=signed_on,
                    removed=None,
                )
            )
        # One allocation per 64 prefixes keeps the registry small
        # without changing any per-prefix answer (contiguous carve).
        if global_index % 64 == 63 or index == task.count - 1:
            allocations.append(
                (
                    alloc_start,
                    alloc_end,
                    f"{task.rir.lower()}-isp-{global_index // 64}",
                )
            )
            alloc_start = None
    return _BackgroundShardResult(
        routes=tuple(routes),
        roas=tuple(roas),
        allocations=tuple(allocations),
        attachments=tuple(attachments),
    )


def _run_background_shard_packed(task: _BackgroundShardTask) -> bytes:
    """Run one shard and pack it columnar for the pickle pipe.

    Pool workers return packed blobs instead of object graphs: the
    columnar encoding is ~2x smaller on the wire than the pickled
    result and — more importantly — the parent reconstructs the
    objects in a tight loop with a shared path pool instead of walking
    pickle's generic graph decoder (see :mod:`repro.store.shards`).
    """
    from ..store.shards import pack_background_shard

    return pack_background_shard(_run_background_shard(task))


class WorldBuilder:
    """Builds a :class:`~repro.synth.world.World` from a config."""

    def __init__(
        self, config: ScenarioConfig, *, jobs: int = 1, instrumentation=None
    ) -> None:
        self.cfg = config
        self.jobs = max(1, jobs)
        if instrumentation is None:
            from ..obs import Instrumentation

            instrumentation = Instrumentation()
        self.instrumentation = instrumentation
        seeds = np.random.SeedSequence(config.seed).spawn(9)
        self.rng_platform = np.random.default_rng(seeds[0])
        self.rng_space = np.random.default_rng(seeds[1])
        self.rng_background = np.random.default_rng(seeds[2])
        self.rng_drop = np.random.default_rng(seeds[3])
        self.rng_irr = np.random.default_rng(seeds[4])
        self.rng_rpki = np.random.default_rng(seeds[5])
        self.rng_sbl = np.random.default_rng(seeds[6])
        self.rng_as0 = np.random.default_rng(seeds[7])
        self.rng_topology = np.random.default_rng(seeds[8])

        self.carver = SpaceCarver()
        self.topology = AsTopology.generate(
            np.random.default_rng(seeds[8])
        )
        self.peers = PeerRegistry()
        self.bgp = RouteIntervalStore(data_end=config.window.end)
        self.resources = ResourceRegistry()
        self.irr = IrrDatabase()
        self.roas = RoaArchive()
        self.drop = DropArchive(config.window)
        self.sbl = SblDatabase()
        self.manual_overrides: dict = {}
        self.truth = GroundTruth()

        self._asn_cursor = 10_000
        self._sbl_cursor = 300_000
        self._all_observers: frozenset[int] = frozenset()
        self._full_table_ids: frozenset[int] = frozenset()
        self._filtering_ids: frozenset[int] = frozenset()
        #: Free-pool layout per RIR: (block, drain cursor) — drains grow
        #: from the bottom; unallocated DROP prefixes are carved from the
        #: top so they stay in the pool for the whole window.
        self._pool_blocks: dict[str, AddressRange] = {}
        self._pool_top_cursor: dict[str, int] = {}

    # -- shared helpers ------------------------------------------------------

    def next_asn(self) -> int:
        """A fresh, globally unique public ASN."""
        self._asn_cursor += 1
        return self._asn_cursor

    def next_sbl_id(self) -> str:
        """A fresh SBL record id."""
        self._sbl_cursor += 1
        return f"SBL{self._sbl_cursor}"

    def uniform_day(
        self, rng: np.random.Generator, start: date, end: date
    ) -> date:
        """A uniform random day in [start, end]."""
        span = (end - start).days
        return start + timedelta(days=int(rng.integers(0, span + 1)))

    def announce(
        self,
        prefix: IPv4Prefix,
        path: ASPath,
        start: date,
        end: date | None,
        *,
        listed: date | None = None,
        delisted: date | None = None,
    ) -> RouteInterval:
        """Record a route interval observed by the whole platform.

        With ``listed`` given, the DROP-filtering peers stop observing the
        route at the listing date (or never see it, if the announcement
        begins while the prefix is listed).
        """
        observers = self._all_observers
        partials: tuple[PartialObservation, ...] = ()
        if listed is not None:
            filter_start = listed
            if start >= filter_start and (delisted is None or start < delisted):
                # Announced while already listed: filtering peers never see it.
                observers = observers - self._filtering_ids
            elif start < filter_start:
                partials = tuple(
                    PartialObservation(
                        peer_id=pid,
                        start=start,
                        end=filter_start - timedelta(days=1),
                    )
                    for pid in sorted(self._filtering_ids)
                )
        interval = RouteInterval(
            prefix=prefix,
            path=path,
            start=start,
            end=end,
            observers=observers,
            partial_observers=partials,
        )
        self.bgp.add(interval)
        return interval

    def sign(
        self,
        prefix: IPv4Prefix,
        asn: int,
        created: date,
        *,
        trust_anchor: str,
        max_length: int | None = None,
        removed: date | None = None,
    ) -> RoaRecord:
        """Publish a ROA record into the archive."""
        record = RoaRecord(
            roa=Roa(
                prefix=prefix,
                asn=asn,
                max_length=max_length,
                trust_anchor=trust_anchor,
            ),
            created=created,
            removed=removed,
        )
        self.roas.add(record)
        return record

    # -- stage 1: observation platform ---------------------------------------

    def build_platform(self) -> None:
        """36 collectors, full-table and partial peers, 3 DROP filterers."""
        cfg = self.cfg
        names = list(ROUTEVIEWS_COLLECTOR_NAMES[: cfg.collectors])
        full_ids: list[int] = []
        for index in range(cfg.full_table_peers):
            peer = self.peers.add_peer(
                asn=3000 + index,
                collector=names[index % len(names)],
                full_table=True,
            )
            full_ids.append(peer.peer_id)
        for index in range(cfg.partial_peers):
            self.peers.add_peer(
                asn=5000 + index,
                collector=names[index % len(names)],
                full_table=False,
            )
        chosen = self.rng_platform.choice(
            np.array(full_ids), size=cfg.drop_filtering_peers, replace=False
        )
        self._filtering_ids = frozenset(int(x) for x in chosen)
        # Rebuild the registry so the filtering peers carry the flag (the
        # flag is descriptive truth; analyses must *infer* it from data).
        rebuilt = PeerRegistry()
        for peer in self.peers.peers():
            rebuilt.add_peer(
                peer.asn,
                peer.collector,
                full_table=peer.full_table,
                filters_drop=peer.peer_id in self._filtering_ids,
            )
        self.peers = rebuilt
        self._full_table_ids = self.peers.full_table_peer_ids()
        self._all_observers = self.peers.peer_ids()
        self.truth.filtering_peer_ids = self._filtering_ids

    # -- stage 2: RIR pools (Figure 7) -----------------------------------------

    def build_rir_pools(self) -> None:
        """Per-RIR free pools, draining linearly over the window."""
        cfg = self.cfg
        for rir, profile in cfg.regions.items():
            block = self.carver.carve_range(
                profile.free_pool_start, align_length=16
            )
            self._pool_blocks[rir] = block
            self._pool_top_cursor[rir] = block.end
            self.resources.delegate_to_rir(rir, block)
            drain_total = profile.free_pool_start - profile.free_pool_end
            months = list(
                month_starts(cfg.window.start, cfg.window.end)
            )
            if drain_total <= 0 or not months:
                continue
            slice_size = drain_total // len(months)
            slice_size = max(1 << 8, (slice_size >> 8) << 8)  # /24 align
            cursor = block.start
            for index, month in enumerate(months):
                if cursor + slice_size > block.end:
                    break
                holder = f"{rir.lower()}-member-{index}"
                self.resources.allocate(
                    AddressRange(cursor, cursor + slice_size),
                    rir,
                    month,
                    holder=holder,
                )
                cursor += slice_size

    def carve_unallocated(self, rir: str, length: int) -> IPv4Prefix:
        """A prefix from the *top* of an RIR's pool (never allocated)."""
        size = 1 << (32 - length)
        top = self._pool_top_cursor[rir]
        network = (top - size) & ~(size - 1)
        block = self._pool_blocks[rir]
        if network < block.start:
            raise RuntimeError(f"{rir} pool exhausted for /{length}")
        self._pool_top_cursor[rir] = network
        return IPv4Prefix(network, length)

    # -- stage 3: signed space (Figure 5) ----------------------------------------

    def build_signed_space(self) -> None:
        """The ROA-covered space series, including the big three holders."""
        cfg = self.cfg
        window = cfg.window
        history = cfg.bgp_history_start
        rirs = list(cfg.regions)

        def signed_holder(
            prefix: IPv4Prefix,
            rir: str,
            holder: str,
            *,
            signed_on: date,
            routed_until: date | None,
            routed: bool = True,
        ) -> None:
            asn = self.next_asn()
            self.topology.attach_edge_network(asn)
            self.resources.delegate_to_rir(rir, prefix)
            self.resources.allocate(
                prefix, rir, date(2005, 1, 1), holder=holder
            )
            self.sign(prefix, asn, signed_on, trust_anchor=rir)
            if routed:
                self.announce(
                    prefix,
                    self.topology.path_from_core(asn),
                    history,
                    routed_until,
                )

        # Routed + signed from the start: the bulk of the 49.1 /8s.
        start_routed = cfg.signed_space_start - cfg.unrouted_signed_start
        becoming_unrouted = (
            cfg.unrouted_signed_end
            - cfg.unrouted_signed_start
            - cfg.amazon_unrouted_slash8
            - cfg.alibaba_unrouted_slash8
        )
        chunks = self.carver.carve_slash8_equiv(start_routed, 10)
        drift_chunks = max(0, round(becoming_unrouted / 0.25))
        for index, prefix in enumerate(chunks):
            rir = rirs[index % len(rirs)]
            if index < drift_chunks:
                # These lose their announcements mid-window: the routed
                # share of signed space declines (97.1% -> 90.5%).
                routed_until = self.uniform_day(
                    self.rng_space,
                    window.start + timedelta(days=120),
                    window.end - timedelta(days=60),
                )
            else:
                routed_until = None
            signed_holder(
                prefix,
                rir,
                f"signed-net-{index}",
                signed_on=self.uniform_day(
                    self.rng_space, date(2018, 6, 1), window.start
                ),
                routed_until=routed_until,
            )

        # Signed but never routed from the start (1.6 /8s): Prudential's
        # legacy /8 plus smaller stragglers.
        prudential = self.carver.carve_slash8_equiv(
            cfg.prudential_unrouted_slash8, 8
        )
        for prefix in prudential:
            asn = self.next_asn()
            self.resources.delegate_to_rir("ARIN", prefix)
            self.resources.allocate(
                prefix, "ARIN", date(1991, 1, 1), holder="prudential",
                legacy=True,
            )
            self.sign(prefix, asn, date(2019, 2, 1), trust_anchor="ARIN")
        rest_start_unrouted = (
            cfg.unrouted_signed_start - cfg.prudential_unrouted_slash8
        )
        for index, prefix in enumerate(
            self.carver.carve_slash8_equiv(rest_start_unrouted, 12)
        ):
            signed_holder(
                prefix,
                rirs[index % len(rirs)],
                f"idle-signed-{index}",
                signed_on=date(2019, 1, 15),
                routed_until=None,
                routed=False,
            )

        # Growth: space that signs during the window (routed throughout).
        growth = (
            cfg.signed_space_end
            - cfg.signed_space_start
            - cfg.amazon_unrouted_slash8
            - 0.9  # Amazon's routed share, handled below
            - cfg.alibaba_unrouted_slash8
        )
        for index, prefix in enumerate(
            self.carver.carve_slash8_equiv(growth, 10)
        ):
            signed_holder(
                prefix,
                rirs[index % len(rirs)],
                f"adopter-net-{index}",
                signed_on=self.uniform_day(
                    self.rng_space, window.start, window.end
                ),
                routed_until=None,
            )

        # Amazon: one signing event covering routed and unrouted space.
        amazon_asn = self.next_asn()
        for prefix in self.carver.carve_slash8_equiv(0.9, 10):
            self.resources.delegate_to_rir("ARIN", prefix)
            self.resources.allocate(
                prefix, "ARIN", date(2010, 1, 1), holder="amazon"
            )
            self.sign(
                prefix, amazon_asn, cfg.amazon_roa_event, trust_anchor="ARIN"
            )
            self.announce(
                prefix,
                self.topology.path_from_core(amazon_asn),
                history,
                None,
            )
        for prefix in self.carver.carve_slash8_equiv(
            cfg.amazon_unrouted_slash8, 10
        ):
            self.resources.delegate_to_rir("ARIN", prefix)
            self.resources.allocate(
                prefix, "ARIN", date(2010, 1, 1), holder="amazon"
            )
            self.sign(
                prefix, amazon_asn, cfg.amazon_roa_event, trust_anchor="ARIN"
            )

        # Alibaba: unrouted signed, mid-window, APNIC.
        alibaba_asn = self.next_asn()
        for prefix in self.carver.carve_slash8_equiv(
            cfg.alibaba_unrouted_slash8, 12
        ):
            self.resources.delegate_to_rir("APNIC", prefix)
            self.resources.allocate(
                prefix, "APNIC", date(2012, 1, 1), holder="alibaba"
            )
            self.sign(
                prefix, alibaba_asn, date(2021, 4, 1), trust_anchor="APNIC"
            )

        self.truth.unrouted_signed_holders = {
            "amazon": cfg.amazon_unrouted_slash8,
            "prudential": cfg.prudential_unrouted_slash8,
            "alibaba": cfg.alibaba_unrouted_slash8,
        }

    # -- stage 4: allocated, unrouted, unsigned (Figure 5) -------------------------

    def build_unrouted_unsigned(self) -> None:
        """The 29.2 → 30.0 /8s of allocated-unrouted-no-ROA space.

        Amazon's and Alibaba's unrouted blocks sit in this series until
        their signing events move them to the signed-unrouted series, so
        the static base here is the paper's start value minus their
        space; window growth makes up the difference at the end.
        """
        cfg = self.cfg
        static_total = (
            cfg.unrouted_unsigned_start
            - cfg.amazon_unrouted_slash8
            - cfg.alibaba_unrouted_slash8
        )
        arin_start = static_total * cfg.arin_unrouted_share
        other_start = static_total - arin_start
        for index, prefix in enumerate(
            self.carver.carve_slash8_equiv(arin_start, 8)
        ):
            self.resources.delegate_to_rir("ARIN", prefix)
            self.resources.allocate(
                prefix,
                "ARIN",
                date(1992, 1, 1),
                holder=f"legacy-idle-{index}",
                legacy=True,
            )
        other_rirs = [r for r in cfg.regions if r != "ARIN"]
        for index, prefix in enumerate(
            self.carver.carve_slash8_equiv(other_start, 10)
        ):
            rir = other_rirs[index % len(other_rirs)]
            self.resources.delegate_to_rir(rir, prefix)
            self.resources.allocate(
                prefix, rir, date(2003, 1, 1), holder=f"idle-{rir}-{index}"
            )
        # Growth beyond the pool drains: new unrouted allocations during
        # the window (ARIN-weighted, matching the end-of-window share).
        growth = cfg.unrouted_unsigned_end - static_total - 0.26
        if growth > 0:
            for index, prefix in enumerate(
                self.carver.carve_slash8_equiv(growth, 12)
            ):
                rir = "ARIN" if index % 3 else "RIPE"
                self.resources.delegate_to_rir(rir, prefix)
                alloc_day = self.uniform_day(
                    self.rng_space, cfg.window.start, cfg.window.end
                )
                # Reserved until handed out, so this space never shows up
                # as free pool (Figure 7) before its allocation date.
                self.resources.allocate(
                    prefix, rir, date(1995, 1, 1),
                    holder=None, status="reserved",
                )
                self.resources.deallocate(prefix, alloc_day)
                self.resources.allocate(
                    prefix, rir, alloc_day, holder=f"idle-new-{index}"
                )

    # -- stage 5: background populations (Table 1) -----------------------------------

    def build_background(self) -> None:
        """Routed, unsigned-at-start prefixes per region; some sign.

        Planned as shards (see the module-level sharding constants),
        generated by :func:`_run_background_shard` — in a process pool
        when the builder has ``jobs > 1``, in-process otherwise — and
        merged in canonical task order.  Both execution vehicles run the
        identical shard functions, so the result is byte-identical.
        """
        tasks = self._plan_background_shards()
        results = self._map_background_shards(tasks)
        signed_counts: dict[str, int] = {}
        for task, result in zip(tasks, results):
            for asn, providers in result.attachments:
                self.topology.adopt_edge_network(asn, providers)
            for interval in result.routes:
                self.bgp.add(interval)
            for record in result.roas:
                self.roas.add(record)
            for start, end, holder in result.allocations:
                block = AddressRange(start, end)
                self.resources.delegate_to_rir(task.rir, block)
                self.resources.allocate(
                    block, task.rir, date(2012, 1, 1), holder=holder
                )
            signed_counts[task.rir] = (
                signed_counts.get(task.rir, 0) + task.signer_quota
            )
        self.truth.background_signed = signed_counts

    def _plan_background_shards(self) -> list[_BackgroundShardTask]:
        """Carve per-shard address blocks and derive per-shard streams.

        Planning happens in the parent so the carver cursor moves
        deterministically regardless of ``jobs``; each shard block is
        sized for the worst case, and the unused tail is never delegated
        or allocated, so it is invisible to every analysis.
        """
        cfg = self.cfg
        tasks: list[_BackgroundShardTask] = []
        for region_index, (rir, profile) in enumerate(cfg.regions.items()):
            count = profile.background_prefixes
            signers = int(round(count * profile.base_signing_rate))
            sizes: list[int] = []
            start = 0
            while start < count:
                sizes.append(min(_BACKGROUND_SHARD_PREFIXES, count - start))
                start += sizes[-1]
            quotas = _largest_remainder(signers, sizes)
            start = 0
            for shard_index, (size, quota) in enumerate(zip(sizes, quotas)):
                block = self.carver.carve_range(
                    size * _BACKGROUND_ADDRS_PER_PREFIX, align_length=16
                )
                tasks.append(
                    _BackgroundShardTask(
                        seed=cfg.seed,
                        region_index=region_index,
                        shard_index=shard_index,
                        rir=rir,
                        start_index=start,
                        count=size,
                        signer_quota=quota,
                        block_start=block.start,
                        asn_base=(
                            _BACKGROUND_ASN_BASE
                            + region_index * _BACKGROUND_ASN_STRIDE
                        ),
                        history=cfg.bgp_history_start,
                        window_start=cfg.window.start,
                        window_end=cfg.window.end,
                        maxlength_usage_rate=cfg.maxlength_usage_rate,
                    )
                )
                start += size
        return tasks

    def _map_background_shards(
        self, tasks: list[_BackgroundShardTask]
    ) -> list[_BackgroundShardResult]:
        context = (self.topology.core_view(), self._all_observers)
        _set_shard_context(*context)
        if self.jobs > 1 and len(tasks) > 1:
            # Imported lazily: runtime imports synth at module load.
            from ..runtime.runner import parallel_map
            from ..store.shards import unpack_background_shard

            blobs = parallel_map(
                _run_background_shard_packed,
                tasks,
                jobs=self.jobs,
                initializer=_set_shard_context,
                initargs=context,
            )
            return [
                unpack_background_shard(
                    blob, observers=context[1], trust_anchor=task.rir
                )
                for task, blob in zip(tasks, blobs)
            ]
        return [_run_background_shard(task) for task in tasks]

    # -- stage 7: RIR AS0 trust anchors (§6.2.2) ----------------------------------------

    def build_rir_as0(self) -> None:
        """AS0 ROAs over unallocated pools, plus routed bogons under them."""
        cfg = self.cfg
        for rir in ("APNIC", "LACNIC"):
            policy_start = rir_as0_policy_start(rir)
            tal = rir_as0_tal(rir)
            assert policy_start is not None and tal is not None
            # Cover the pool's never-allocated top region with AS0 ROAs.
            block = self._pool_blocks[rir]
            drained = self.resources.allocated_space(cfg.window.end, rir)
            pool_space = (
                self.resources.managed_space(rir).difference(drained)
            )
            for prefix in pool_space.iter_prefixes():
                if not block.contains(prefix.to_range()):
                    continue
                self.sign(
                    prefix,
                    0,
                    policy_start,
                    trust_anchor=tal,
                    max_length=32,
                )
        # Routed bogons inside AS0-covered pool space that are NOT on DROP:
        # these are what a peer filtering on the AS0 TALs would drop.
        already = sum(
            1
            for prefix, truth in self.truth.drop.items()
            if truth.unallocated
            and truth.region in ("APNIC", "LACNIC")
            and self.bgp.is_announced(
                prefix, cfg.window.end, include_covering=False
            )
        )
        needed = max(0, cfg.as0_filterable_prefixes - already)
        for index in range(needed):
            rir = "APNIC" if index % 2 else "LACNIC"
            prefix = self.carve_unallocated(rir, 24)
            asn = self.next_asn()
            self.announce(
                prefix,
                self.topology.path_from_core(asn),
                cfg.window.end - timedelta(days=200),
                None,
            )
            self.truth.as0_filterable.append(prefix)

    # -- orchestration -----------------------------------------------------------------------

    def build(self, *, scenario_stages=None) -> World:
        """Run every stage (timed) and return the finished world.

        ``scenario_stages`` replaces the legacy drop-population +
        case-study pair with caller-supplied ``(name, thunk)`` stages —
        the hook :func:`~repro.scenarios.compose.build_scenario_world`
        uses to run DSL playbook compositions through the same build.
        """
        if scenario_stages is None:
            # Imported lazily: the playbooks package imports this module.
            from ..scenarios.playbooks import (
                build_case_study,
                build_drop_population,
            )

            scenario_stages = (
                ("drop-population", lambda: build_drop_population(self)),
                ("case-study", lambda: build_case_study(self)),
            )
        stages = (
            ("platform", self.build_platform),
            ("rir-pools", self.build_rir_pools),
            ("signed-space", self.build_signed_space),
            ("unrouted-unsigned", self.build_unrouted_unsigned),
            ("background", self.build_background),
            *scenario_stages,
            ("rir-as0", self.build_rir_as0),
        )
        for name, run_stage in stages:
            with self.instrumentation.stage(name, group="build"):
                run_stage()
        return World(
            config=self.cfg,
            window=self.cfg.window,
            peers=self.peers,
            bgp=self.bgp,
            resources=self.resources,
            irr=self.irr,
            roas=self.roas,
            drop=self.drop,
            sbl=self.sbl,
            manual_overrides=self.manual_overrides,
            truth=self.truth,
        )


def build_world(
    config: ScenarioConfig | None = None,
    *,
    jobs: int = 1,
    instrumentation=None,
) -> World:
    """Build a world from ``config`` (default: paper scale).

    ``jobs > 1`` fans the background shards out over a process pool;
    the result is byte-identical to the serial build (golden-tested),
    so the world cache never keys on it.  With ``instrumentation``
    given, per-stage wall times are recorded into it (group
    ``"build"``).
    """
    builder = WorldBuilder(
        config or ScenarioConfig.paper(),
        jobs=jobs,
        instrumentation=instrumentation,
    )
    return builder.build()
