"""Unit tests for repro.net.radix."""

import pytest

from repro.net.prefix import IPv4Prefix, parse_ip
from repro.net.radix import PrefixTrie, RadixTree


def P(text):
    return IPv4Prefix.parse(text)


@pytest.fixture
def tree():
    t = RadixTree()
    for cidr in ["10.0.0.0/8", "10.0.0.0/16", "10.0.1.0/24", "10.1.0.0/16",
                 "192.0.2.0/24", "0.0.0.0/0"]:
        t.insert(P(cidr), cidr)
    return t


class TestInsertLookup:
    def test_len(self, tree):
        assert len(tree) == 6

    def test_exact_get(self, tree):
        assert tree.get(P("10.0.1.0/24")) == "10.0.1.0/24"

    def test_get_missing_default(self, tree):
        assert tree.get(P("10.0.2.0/24"), "absent") == "absent"

    def test_contains(self, tree):
        assert P("10.0.0.0/8") in tree
        assert P("10.0.0.0/9") not in tree

    def test_getitem_raises(self, tree):
        with pytest.raises(KeyError):
            tree[P("172.16.0.0/12")]

    def test_setitem_replaces(self, tree):
        tree[P("10.0.0.0/8")] = "replaced"
        assert tree[P("10.0.0.0/8")] == "replaced"
        assert len(tree) == 6

    def test_empty_tree(self):
        t = RadixTree()
        assert len(t) == 0
        assert not t
        assert t.get(P("10.0.0.0/8")) is None
        assert t.lookup_best(P("10.0.0.0/8")) is None
        assert t.lookup_covered(P("0.0.0.0/0")) == []

    def test_insert_default_route_last(self):
        t = RadixTree()
        t.insert(P("10.0.0.0/8"), 1)
        t.insert(P("0.0.0.0/0"), 2)
        assert t[P("0.0.0.0/0")] == 2
        assert t[P("10.0.0.0/8")] == 1


class TestCoveringQueries:
    def test_lookup_covering_order(self, tree):
        found = [str(p) for p, _ in tree.lookup_covering(P("10.0.1.128/25"))]
        assert found == ["0.0.0.0/0", "10.0.0.0/8", "10.0.0.0/16",
                         "10.0.1.0/24"]

    def test_lookup_best_is_longest(self, tree):
        best = tree.lookup_best(P("10.0.1.128/25"))
        assert best is not None
        assert str(best[0]) == "10.0.1.0/24"

    def test_lookup_covering_includes_exact(self, tree):
        found = [str(p) for p, _ in tree.lookup_covering(P("10.1.0.0/16"))]
        assert "10.1.0.0/16" in found

    def test_covers_address(self, tree):
        assert tree.covers_address(parse_ip("192.0.2.9"))

    def test_no_default_route_no_match(self):
        t = RadixTree()
        t.insert(P("10.0.0.0/8"), 1)
        assert t.lookup_best(P("11.0.0.0/24")) is None


class TestCoveredQueries:
    def test_lookup_covered_subtree(self, tree):
        found = {str(p) for p, _ in tree.lookup_covered(P("10.0.0.0/8"))}
        assert found == {"10.0.0.0/8", "10.0.0.0/16", "10.0.1.0/24",
                         "10.1.0.0/16"}

    def test_lookup_covered_no_match(self, tree):
        assert tree.lookup_covered(P("172.16.0.0/12")) == []

    def test_lookup_covered_whole_tree(self, tree):
        assert len(tree.lookup_covered(P("0.0.0.0/0"))) == 6

    def test_lookup_covered_longer_than_entries(self, tree):
        assert tree.lookup_covered(P("10.0.1.128/25")) == []


class TestDeletion:
    def test_delete_returns_value(self, tree):
        assert tree.delete(P("10.0.1.0/24")) == "10.0.1.0/24"
        assert len(tree) == 5
        assert P("10.0.1.0/24") not in tree

    def test_delete_missing_raises(self, tree):
        with pytest.raises(KeyError):
            tree.delete(P("172.16.0.0/12"))

    def test_delete_keeps_others(self, tree):
        tree.delete(P("10.0.0.0/16"))
        assert str(tree.lookup_best(P("10.0.1.0/24"))[0]) == "10.0.1.0/24"
        found = [str(p) for p, _ in tree.lookup_covering(P("10.0.1.128/25"))]
        assert "10.0.0.0/16" not in found

    def test_reinsert_after_delete(self, tree):
        tree.delete(P("10.0.0.0/8"))
        tree.insert(P("10.0.0.0/8"), "again")
        assert tree[P("10.0.0.0/8")] == "again"
        assert len(tree) == 6


class TestIteration:
    def test_items_in_address_order(self, tree):
        prefixes = [p for p, _ in tree.items()]
        assert prefixes == sorted(prefixes)

    def test_iter_yields_prefixes(self, tree):
        assert set(iter(tree)) == {
            P("10.0.0.0/8"), P("10.0.0.0/16"), P("10.0.1.0/24"),
            P("10.1.0.0/16"), P("192.0.2.0/24"), P("0.0.0.0/0"),
        }


class TestPrefixTrieAlias:
    """The query layer's name for the structure is the same class."""

    def test_alias_identity(self):
        assert PrefixTrie is RadixTree


class TestLookupBestEdgeCases:
    def test_default_route_only_matches_everything(self):
        t = PrefixTrie()
        t.insert(P("0.0.0.0/0"), "default")
        assert t.lookup_best(P("203.0.113.0/24")) == (P("0.0.0.0/0"),
                                                      "default")
        assert t.lookup_best(P("0.0.0.0/0")) == (P("0.0.0.0/0"), "default")

    def test_exact_match_beats_covering(self, tree):
        best = tree.lookup_best(P("10.0.1.0/24"))
        assert best == (P("10.0.1.0/24"), "10.0.1.0/24")

    def test_disjoint_prefix_falls_back_to_default(self, tree):
        # 172.16/12 shares no entry but the default route still covers it.
        assert tree.lookup_best(P("172.16.0.0/12"))[0] == P("0.0.0.0/0")

    def test_disjoint_prefix_without_default_is_none(self):
        t = PrefixTrie()
        t.insert(P("10.0.0.0/8"), 1)
        t.insert(P("192.0.2.0/24"), 2)
        assert t.lookup_best(P("172.16.0.0/12")) is None


class TestLookupCoveredEdgeCases:
    def test_default_route_query_returns_whole_trie(self, tree):
        covered = {str(p) for p, _ in tree.lookup_covered(P("0.0.0.0/0"))}
        assert len(covered) == len(tree)
        assert "0.0.0.0/0" in covered

    def test_exact_leaf_is_its_own_subtree(self, tree):
        assert tree.lookup_covered(P("10.0.1.0/24")) == [
            (P("10.0.1.0/24"), "10.0.1.0/24")
        ]

    def test_disjoint_prefix_covers_nothing(self, tree):
        assert tree.lookup_covered(P("172.16.0.0/12")) == []

    def test_default_route_entry_not_covered_by_specific(self):
        t = PrefixTrie()
        t.insert(P("0.0.0.0/0"), "default")
        assert t.lookup_covered(P("10.0.0.0/8")) == []


def _node_count(tree):
    """Every _Node reachable from the root, entry-bearing or structural."""
    count, stack = 0, [tree._root]
    while stack:
        node = stack.pop()
        if node is None:
            continue
        count += 1
        stack.extend((node.left, node.right))
    return count


class TestDeletionPruning:
    """Deletes splice out entry-less nodes: node count tracks entry count."""

    def test_leaf_delete_prunes_node(self, tree):
        before = _node_count(tree)
        tree.delete(P("10.0.1.0/24"))
        assert _node_count(tree) < before

    def test_delete_all_empties_structure(self, tree):
        for prefix in list(tree):
            tree.delete(prefix)
        assert len(tree) == 0
        assert tree._root is None
        assert _node_count(tree) == 0

    def test_structural_joint_with_two_children_survives(self):
        t = RadixTree()
        t.insert(P("10.0.0.0/16"), "a")
        t.insert(P("10.1.0.0/16"), "b")
        t.insert(P("10.0.0.0/8"), "joint")
        # Deleting the /8 leaves a two-child joint: it must stay (it
        # routes the two /16s) but carries no entry.
        t.delete(P("10.0.0.0/8"))
        assert len(t) == 2
        assert _node_count(t) == 3
        assert t.lookup_best(P("10.0.0.0/24"))[1] == "a"
        assert t.lookup_best(P("10.1.0.0/24"))[1] == "b"

    def test_chain_collapse_after_leaf_delete(self):
        t = RadixTree()
        t.insert(P("10.0.0.0/16"), "a")
        t.insert(P("10.1.0.0/16"), "b")
        # The insert created one structural joint above the two leaves;
        # deleting one leaf must also remove the joint (single-child,
        # entry-less), leaving exactly one node.
        t.delete(P("10.1.0.0/16"))
        assert len(t) == 1
        assert _node_count(t) == 1
        assert t.lookup_best(P("10.0.0.0/24"))[1] == "a"

    def test_churn_does_not_accumulate_nodes(self):
        """The regression the lazy non-pruning delete failed: node count
        after heavy insert/delete churn equals a fresh build's."""
        t = RadixTree()
        keep = [P(f"10.{i}.0.0/16") for i in range(0, 64, 2)]
        churn = [P(f"10.{i}.0.0/16") for i in range(1, 64, 2)]
        churn += [P(f"10.0.{i}.0/24") for i in range(64)]
        for p in keep + churn:
            t.insert(p, str(p))
        for p in churn:
            t.delete(p)
        fresh = RadixTree()
        for p in keep:
            fresh.insert(p, str(p))
        assert len(t) == len(fresh) == len(keep)
        assert _node_count(t) == _node_count(fresh)
        for p in keep:
            assert t[p] == str(p)

    def test_queries_intact_after_interior_delete(self, tree):
        tree.delete(P("10.0.0.0/16"))
        tree.delete(P("0.0.0.0/0"))
        assert [str(p) for p, _ in tree.lookup_covering(P("10.0.1.128/25"))] \
            == ["10.0.0.0/8", "10.0.1.0/24"]
        covered = {str(p) for p, _ in tree.lookup_covered(P("10.0.0.0/8"))}
        assert covered == {"10.0.0.0/8", "10.0.1.0/24", "10.1.0.0/16"}


class TestFork:
    """fork(): O(1) snapshots with copy-on-write isolation both ways."""

    def test_fork_shares_nodes_until_written(self, tree):
        forked = tree.fork()
        assert forked._root is tree._root
        assert len(forked) == len(tree)
        assert dict(forked.items()) == dict(tree.items())

    def test_write_on_fork_leaves_original_untouched(self, tree):
        before = dict(tree.items())
        forked = tree.fork()
        forked.insert(P("172.16.0.0/12"), "new")
        forked.insert(P("10.0.1.0/24"), "replaced")
        assert dict(tree.items()) == before
        assert forked.get(P("172.16.0.0/12")) == "new"
        assert forked.get(P("10.0.1.0/24")) == "replaced"
        assert tree.get(P("10.0.1.0/24")) == "10.0.1.0/24"
        assert P("172.16.0.0/12") not in tree

    def test_write_on_original_leaves_fork_untouched(self, tree):
        forked = tree.fork()
        snapshot = dict(forked.items())
        tree.insert(P("198.51.100.0/24"), "late")
        tree.delete(P("192.0.2.0/24"))
        assert dict(forked.items()) == snapshot
        assert P("198.51.100.0/24") not in forked
        assert forked.get(P("192.0.2.0/24")) == "192.0.2.0/24"

    def test_delete_on_fork_is_isolated(self, tree):
        forked = tree.fork()
        forked.delete(P("10.0.0.0/16"))
        forked.delete(P("0.0.0.0/0"))
        assert P("10.0.0.0/16") in tree
        assert P("0.0.0.0/0") in tree
        assert P("10.0.0.0/16") not in forked
        assert len(forked) == len(tree) - 2

    def test_fork_write_copies_only_the_touched_path(self):
        t = RadixTree()
        for i in range(256):
            t.insert(P(f"10.{i}.0.0/16"), i)
        total = _node_count(t)
        forked = t.fork()
        forked.insert(P("10.0.0.0/24"), "x")
        own = 0
        stack = [forked._root]
        while stack:
            node = stack.pop()
            if node is None:
                continue
            if node.gen == forked._gen:
                own += 1
            stack.extend((node.left, node.right))
        # A world-scale trie copies a root-to-leaf path, not the tree.
        assert own < 16, (own, total)

    def test_fork_values_are_shared_not_copied(self, tree):
        bucket = ["a"]
        tree.insert(P("203.0.113.0/24"), bucket)
        forked = tree.fork()
        assert forked.get(P("203.0.113.0/24")) is bucket

    def test_chained_forks_stay_isolated(self, tree):
        first = tree.fork()
        first.insert(P("172.16.0.0/12"), "first")
        second = first.fork()
        second.insert(P("172.17.0.0/16"), "second")
        second.delete(P("172.16.0.0/12"))
        assert first.get(P("172.16.0.0/12")) == "first"
        assert P("172.17.0.0/16") not in first
        assert P("172.16.0.0/12") not in tree

    def test_fork_iteration_order_matches_clone(self, tree):
        forked = tree.fork()
        forked.insert(P("172.16.0.0/12"), "new")
        cloned = tree.clone()
        cloned.insert(P("172.16.0.0/12"), "new")
        assert list(forked.items()) == list(cloned.items())
