"""§4.1 (second half): RIR deallocation after DROP listing.

Two findings:

* 17.4% of malicious-hosting prefixes that were allocated when listed
  were deallocated by the end of the window — the category with the most
  deallocated address space;
* 8.8% of the prefixes Spamhaus removed from DROP were deallocated, and
  half of those were removed within a week of the RIR deallocating them.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import timedelta

from ..drop.categories import Category
from ..synth.world import World
from .common import DropEntryView, load_entries

__all__ = ["DeallocationResult", "analyze_deallocation"]


@dataclass(frozen=True, slots=True)
class DeallocationResult:
    """The §4.1 deallocation statistics."""

    #: category → (deallocated, allocated-at-listing) prefix counts.
    by_category: dict[Category, tuple[int, int]]
    removed_total: int
    removed_deallocated: int
    removed_within_week_of_dealloc: int

    def category_rate(self, category: Category) -> float:
        """Deallocation rate for one category (MH: 17.4%)."""
        deallocated, total = self.by_category.get(category, (0, 0))
        return deallocated / total if total else 0.0

    @property
    def removed_deallocation_rate(self) -> float:
        """Share of removed prefixes that were deallocated (8.8%)."""
        return (
            self.removed_deallocated / self.removed_total
            if self.removed_total
            else 0.0
        )

    @property
    def within_week_share(self) -> float:
        """Of those, the share delisted within a week of the
        deallocation (paper: half)."""
        return (
            self.removed_within_week_of_dealloc / self.removed_deallocated
            if self.removed_deallocated
            else 0.0
        )


def analyze_deallocation(
    world: World,
    entries: list[DropEntryView] | None = None,
    *,
    exclude_incidents: bool = True,
) -> DeallocationResult:
    """Run the deallocation analysis against the registry timeline."""
    if entries is None:
        entries = load_entries(world)
    if exclude_incidents:
        entries = [e for e in entries if not e.incident]
    window_end = world.window.end

    by_category: dict[Category, list[int]] = {c: [0, 0] for c in Category}
    removed_total = 0
    removed_deallocated = 0
    within_week = 0
    for entry in entries:
        if not entry.allocated_at_listing:
            continue
        dealloc = world.resources.deallocated_by(
            entry.prefix, window_end, after=entry.listed
        )
        for category in entry.categories:
            by_category[category][1] += 1
            if dealloc is not None:
                by_category[category][0] += 1
        if entry.removed:
            removed_total += 1
            if dealloc is not None and dealloc.end is not None:
                removed_deallocated += 1
                assert entry.removed_on is not None
                gap = entry.removed_on - dealloc.end
                if timedelta(days=0) <= gap <= timedelta(days=7):
                    within_week += 1
    return DeallocationResult(
        by_category={
            category: (counts[0], counts[1])
            for category, counts in by_category.items()
            if counts[1]
        },
        removed_total=removed_total,
        removed_deallocated=removed_deallocated,
        removed_within_week_of_dealloc=within_week,
    )
