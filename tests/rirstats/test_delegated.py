"""Unit tests for repro.rirstats.delegated and rirs."""

from datetime import date

import pytest

from repro.net.prefix import parse_ip
from repro.rirstats.delegated import (
    DelegatedRecord,
    emit_delegated,
    parse_delegated,
)
from repro.rirstats.rirs import ALL_RIRS, display_name, normalize_rir

SAMPLE = """\
2|apnic|20220330|4|19830101|20220330|+10
apnic|*|ipv4|*|3|summary
apnic|*|asn|*|1|summary
apnic|AU|ipv4|1.0.0.0|256|20110811|allocated|A9173591
apnic|CN|ipv4|1.0.1.0|256|20110414|assigned
apnic||ipv4|1.4.128.0|128||available
apnic|JP|asn|173|1|20020801|allocated
"""


class TestRirNames:
    def test_all_rirs(self):
        assert len(ALL_RIRS) == 5

    def test_normalize_aliases(self):
        assert normalize_rir("ripencc") == "RIPE"
        assert normalize_rir("RIPE NCC") == "RIPE"
        assert normalize_rir("arin") == "ARIN"

    def test_normalize_unknown(self):
        with pytest.raises(ValueError):
            normalize_rir("iana")

    def test_display_name(self):
        assert display_name("RIPE") == "RIPE NCC"
        assert display_name("apnic") == "APNIC"


class TestParseDelegated:
    def test_parses_records(self):
        records = list(parse_delegated(SAMPLE))
        assert len(records) == 4

    def test_ipv4_allocated_record(self):
        record = next(parse_delegated(SAMPLE))
        assert record.registry == "APNIC"
        assert record.country == "AU"
        assert record.start == parse_ip("1.0.0.0")
        assert record.count == 256
        assert record.allocated_on == date(2011, 8, 11)
        assert record.status == "allocated"
        assert record.opaque_id == "A9173591"

    def test_available_record_has_no_date(self):
        records = list(parse_delegated(SAMPLE))
        available = [r for r in records if r.status == "available"]
        assert len(available) == 1
        assert available[0].allocated_on is None
        assert available[0].country is None

    def test_asn_record(self):
        records = list(parse_delegated(SAMPLE))
        asn = [r for r in records if r.rtype == "asn"]
        assert len(asn) == 1
        assert asn[0].start == 173

    def test_address_range(self):
        record = next(parse_delegated(SAMPLE))
        assert record.address_range.num_addresses == 256

    def test_address_range_rejected_for_asn(self):
        record = DelegatedRecord("APNIC", None, "asn", 173, 1,
                                 None, "allocated")
        with pytest.raises(ValueError):
            record.address_range

    def test_ipv6_skipped(self):
        text = "2|apnic|20220330|1|19830101|20220330|+10\n" \
               "apnic|AU|ipv6|2001:200::|35|19990813|allocated\n"
        assert list(parse_delegated(text)) == []

    def test_bad_status_rejected(self):
        with pytest.raises(ValueError):
            DelegatedRecord("APNIC", None, "ipv4", 0, 256, None, "bogus")

    def test_short_record_raises(self):
        with pytest.raises(ValueError):
            list(parse_delegated("apnic|AU|ipv4|1.0.0.0|256\n"))

    def test_short_header_raises(self):
        with pytest.raises(ValueError):
            list(parse_delegated("2|apnic|20220330\n"))

    def test_ripencc_normalized(self):
        text = ("2|ripencc|20220330|1|19830101|20220330|+00\n"
                "ripencc|NL|ipv4|2.0.0.0|1024|20100101|allocated\n")
        record = next(parse_delegated(text))
        assert record.registry == "RIPE"


class TestEmitDelegated:
    def records(self):
        return [
            DelegatedRecord("APNIC", "AU", "ipv4", parse_ip("1.0.0.0"), 256,
                            date(2011, 8, 11), "allocated", "A917"),
            DelegatedRecord("APNIC", None, "ipv4", parse_ip("1.4.128.0"), 128,
                            None, "available"),
        ]

    def test_round_trip(self):
        text = emit_delegated("APNIC", date(2022, 3, 30), self.records())
        parsed = list(parse_delegated(text))
        assert parsed == self.records()

    def test_summary_counts(self):
        text = emit_delegated("APNIC", date(2022, 3, 30), self.records())
        assert "apnic|*|ipv4|*|2|summary" in text

    def test_ripe_registry_field(self):
        record = DelegatedRecord("RIPE", "NL", "ipv4", parse_ip("2.0.0.0"),
                                 1024, date(2010, 1, 1), "allocated")
        text = emit_delegated("RIPE", date(2022, 3, 30), [record])
        assert "ripencc|NL|ipv4|2.0.0.0|1024" in text
        assert next(parse_delegated(text)).registry == "RIPE"
