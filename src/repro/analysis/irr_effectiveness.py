"""§5 / Figure 3: effectiveness of the IRR.

Measures how DROP prefixes used RADb:

* how many had a route object (exact or more-specific) in the 7-day
  window before listing (paper: 226 prefixes, 31.7%, 68.8% of space);
* how many of those objects were created in the month before listing
  (32%) and removed in the month after (43%);
* the hijacker-ASN match: of the prefixes whose SBL names a hijacking
  ASN, how many have a route object with that ASN as origin (57 of 130),
  the distinct hijacking ASNs (13), and the ORG-ID clustering (3 ORG-IDs
  for 49 of 57);
* the Figure 3 CDF of days from IRR-record creation to BGP / DROP
  appearance;
* the unallocated prefix that nonetheless got into the IRR.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import date, timedelta

from ..irr.radb import RouteObjectRecord
from ..net.prefix import IPv4Prefix
from ..synth.world import World
from .common import DropEntryView, load_entries

__all__ = ["IrrEffectiveness", "IrrTiming", "analyze_irr"]


@dataclass(frozen=True, slots=True)
class IrrTiming:
    """Figure 3 sample: one forged-record prefix's timing."""

    prefix: IPv4Prefix
    irr_created: date
    bgp_first: date | None
    drop_listed: date

    @property
    def days_to_bgp(self) -> int | None:
        """Days from IRR-record creation to BGP appearance."""
        if self.bgp_first is None:
            return None
        return (self.bgp_first - self.irr_created).days

    @property
    def days_to_drop(self) -> int:
        """Days from IRR-record creation to DROP listing."""
        return (self.drop_listed - self.irr_created).days


@dataclass(frozen=True, slots=True)
class IrrEffectiveness:
    """Everything §5 reports."""

    total_prefixes: int
    with_route_object: int
    covered_addresses: int
    total_addresses: int
    created_month_before: int
    removed_month_after: int
    asn_labeled_hijacks: int
    hijacker_asn_matches: int
    distinct_hijacker_asns: int
    org_id_counts: dict[str, int]
    timings: tuple[IrrTiming, ...]
    late_records: int
    preexisting_entries: int
    unallocated_in_irr: tuple[IPv4Prefix, ...]

    @property
    def object_rate(self) -> float:
        """Fraction of DROP prefixes with a route object (31.7%)."""
        return (
            self.with_route_object / self.total_prefixes
            if self.total_prefixes
            else 0.0
        )

    @property
    def space_share(self) -> float:
        """Share of DROP address space covered by those objects (68.8%)."""
        return (
            self.covered_addresses / self.total_addresses
            if self.total_addresses
            else 0.0
        )

    @property
    def created_recently_rate(self) -> float:
        """Objects created in the month before listing (32%)."""
        return (
            self.created_month_before / self.with_route_object
            if self.with_route_object
            else 0.0
        )

    @property
    def removed_after_rate(self) -> float:
        """Objects removed within a month after listing (43%)."""
        return (
            self.removed_month_after / self.with_route_object
            if self.with_route_object
            else 0.0
        )

    @property
    def top_org_cluster_size(self) -> int:
        """Route objects under the three most prolific ORG-IDs (49)."""
        return sum(sorted(self.org_id_counts.values(), reverse=True)[:3])


def analyze_irr(
    world: World,
    entries: list[DropEntryView] | None = None,
    *,
    window_before_days: int = 7,
) -> IrrEffectiveness:
    """Run the §5 analysis."""
    if entries is None:
        entries = load_entries(world)

    with_object = 0
    covered_addresses = 0
    created_recent = 0
    removed_after = 0
    unallocated_in_irr: list[IPv4Prefix] = []
    per_entry_records: dict[IPv4Prefix, list[RouteObjectRecord]] = {}
    for entry in entries:
        window = (
            entry.listed - timedelta(days=window_before_days),
            entry.listed,
        )
        records = world.irr.exact_or_more_specific(
            entry.prefix, active_in=window
        )
        if not records:
            continue
        per_entry_records[entry.prefix] = records
        with_object += 1
        covered_addresses += entry.prefix.num_addresses
        if any(
            entry.listed - timedelta(days=31)
            <= record.created
            <= entry.listed
            for record in records
        ):
            created_recent += 1
        if any(
            record.deleted is not None
            and entry.listed
            < record.deleted
            <= entry.listed + timedelta(days=31)
            for record in records
        ):
            removed_after += 1
        if entry.unallocated:
            unallocated_in_irr.append(entry.prefix)

    # Hijacker-ASN matching: the SBL names an ASN; does a route object
    # carry it as origin?
    asn_labeled = [
        e
        for e in entries
        if e.mentioned_asns
        and not e.incident
        and any(
            c.value == "HJ" for c in e.categories
        )
    ]
    matches: list[tuple[DropEntryView, RouteObjectRecord]] = []
    for entry in asn_labeled:
        for record in world.irr.exact_or_more_specific(entry.prefix):
            if record.route.origin in entry.mentioned_asns:
                matches.append((entry, record))
                break

    org_counts: dict[str, int] = {}
    distinct_asns: set[int] = set()
    timings: list[IrrTiming] = []
    late = 0
    preexisting = 0
    for entry, record in matches:
        distinct_asns.add(record.route.origin)
        org = record.route.org_id or f"(none:{record.route.maintainer})"
        org_counts[org] = org_counts.get(org, 0) + 1
        bgp_first = world.bgp.first_announced(entry.prefix)
        timing = IrrTiming(
            prefix=entry.prefix,
            irr_created=record.created,
            bgp_first=bgp_first,
            drop_listed=entry.listed,
        )
        timings.append(timing)
        if timing.days_to_bgp is not None and timing.days_to_bgp < -365:
            late += 1
        others = [
            r
            for r in world.irr.exact_or_more_specific(entry.prefix)
            if r.created < record.created
            and r.route.origin != record.route.origin
        ]
        if others:
            preexisting += 1

    total_addresses = sum(e.prefix.num_addresses for e in entries)
    return IrrEffectiveness(
        total_prefixes=len(entries),
        with_route_object=with_object,
        covered_addresses=covered_addresses,
        total_addresses=total_addresses,
        created_month_before=created_recent,
        removed_month_after=removed_after,
        asn_labeled_hijacks=len(asn_labeled),
        hijacker_asn_matches=len(matches),
        distinct_hijacker_asns=len(distinct_asns),
        org_id_counts=org_counts,
        timings=tuple(timings),
        late_records=late,
        preexisting_entries=preexisting,
        unallocated_in_irr=tuple(unallocated_in_irr),
    )
