"""The machine-readable ``/v1`` API contract, and its validator.

``docs/api-contract.json`` — the committed statement of the serving
surface — is rendered from :data:`CONTRACT` by :func:`render`; the
contract tests regenerate it and fail on any drift, then replay live
responses from *both* daemons through :func:`validate`, so the file,
the threaded transport, and the asyncio transport can never disagree
about a body shape.

Schemas use a small JSON-Schema subset — ``type`` (including type
lists), ``const``, ``enum``, ``properties`` / ``required`` /
``additionalProperties``, and ``items`` — which :func:`validate`
implements in-process; there is deliberately no dependency on a
jsonschema package.  ``integer`` excludes booleans (JSON has no bool
subtype of number; Python does, so the validator compensates).

Versioning: every ``/v1/*`` JSON body rides the envelope of
:mod:`repro.query.http` with ``api == API_VERSION``; a breaking
body-shape change bumps that constant and lands a new contract file in
the same commit.  ``/healthz`` and ``/metrics`` are operational
surfaces outside the versioned contract and are listed here with
``versioned: false``.
"""

from __future__ import annotations

import json

from .http import (
    API_VERSION,
    MAX_BATCH_BYTES,
    PROMETHEUS_CONTENT_TYPE,
    SSE_CONTENT_TYPE,
    WATCH_TIMEOUT_CAP,
)

__all__ = [
    "CONTRACT",
    "ERROR_CODES",
    "endpoint",
    "render",
    "validate",
]

#: Every stable error code a ``/v1`` error envelope may carry, with the
#: condition it reports.  Codes are part of the public API: never
#: renumber or reuse one.
ERROR_CODES = {
    "query.bad-prefix": "missing or unparseable prefix argument",
    "query.bad-day": "a date argument that is not a calendar day",
    "query.bad-request": "malformed request line, body, or parameter",
    "query.not-found": "no endpoint answers this method/path pair",
    "query.batch-parse": "one or more invalid items in a batch body",
    "query.reload-failed": "hot reload failed; the old index serves on",
    "query.internal": "unexpected server-side failure",
    "ingest.failed": "delta application failed or was out of range",
}

_STRING = {"type": "string"}
_NULLABLE_STRING = {"type": ["string", "null"]}
_BOOLEAN = {"type": "boolean"}
_INTEGER = {"type": "integer"}
_ASN_LIST = {"type": "array", "items": {"type": "integer"}}
_ISO_DATE = {"type": "string"}

#: ``{"api": 1, "error": {...}}`` — the one failure shape.
ERROR_ENVELOPE = {
    "type": "object",
    "required": ["api", "error"],
    "additionalProperties": False,
    "properties": {
        "api": {"const": API_VERSION},
        "error": {
            "type": "object",
            "required": ["code", "message"],
            "additionalProperties": False,
            "properties": {
                "code": {"enum": sorted(ERROR_CODES)},
                "message": _STRING,
            },
        },
    },
}


def _enveloped(data_schema: dict) -> dict:
    """``{"api": 1, "data": <data_schema>}`` — the success shape."""
    return {
        "type": "object",
        "required": ["api", "data"],
        "additionalProperties": False,
        "properties": {
            "api": {"const": API_VERSION},
            "data": data_schema,
        },
    }


#: One prefix-status answer (the ``/v1/status`` data and each
#: ``/v1/batch`` result).
STATUS_DATA = {
    "type": "object",
    "required": ["prefix", "on", "drop", "irr", "rpki", "bgp"],
    "additionalProperties": False,
    "properties": {
        "prefix": _STRING,
        "on": _ISO_DATE,
        "drop": {
            "type": "object",
            "required": ["listed", "entry", "sbl_id", "since"],
            "additionalProperties": False,
            "properties": {
                "listed": _BOOLEAN,
                "entry": _NULLABLE_STRING,
                "sbl_id": _NULLABLE_STRING,
                "since": _NULLABLE_STRING,
            },
        },
        "irr": {
            "type": "object",
            "required": ["registered", "exact", "origins"],
            "additionalProperties": False,
            "properties": {
                "registered": _BOOLEAN,
                "exact": _BOOLEAN,
                "origins": _ASN_LIST,
            },
        },
        "rpki": {
            "type": "object",
            "required": ["covered", "roa_asns", "validity"],
            "additionalProperties": False,
            "properties": {
                "covered": _BOOLEAN,
                "roa_asns": _ASN_LIST,
                "validity": {"enum": ["valid", "invalid", "not-found", None]},
            },
        },
        "bgp": {
            "type": "object",
            "required": [
                "announced",
                "covered_by_route",
                "origins",
                "visible_peers",
                "total_peers",
            ],
            "additionalProperties": False,
            "properties": {
                "announced": _BOOLEAN,
                "covered_by_route": _BOOLEAN,
                "origins": _ASN_LIST,
                "visible_peers": _INTEGER,
                "total_peers": _INTEGER,
            },
        },
    },
}

#: One subscriber-visible change on the ``/v1/watch`` surface.
WATCH_EVENT = {
    "type": "object",
    "required": [
        "seq", "kind", "day", "prefix", "detail", "origin", "alarm", "sbl_id",
    ],
    "additionalProperties": False,
    "properties": {
        "seq": _INTEGER,
        "kind": {"enum": ["listed", "roa-expired", "hijack"]},
        "day": _ISO_DATE,
        "prefix": _STRING,
        "detail": _STRING,
        "origin": {"type": ["integer", "null"]},
        "alarm": {"enum": ["moas", "subprefix", "origin", None]},
        "sbl_id": _NULLABLE_STRING,
    },
}

WATCH_DATA = {
    "type": "object",
    "required": ["events", "last_seq", "as_of"],
    "additionalProperties": False,
    "properties": {
        "events": {"type": "array", "items": WATCH_EVENT},
        "last_seq": _INTEGER,
        "as_of": _ISO_DATE,
    },
}

#: The ingest-state block: ``/v1/ingest`` answers carry it, and the
#: (unversioned) ``/healthz`` body repeats it under ``"ingest"``.
INGEST_STATUS = {
    "type": "object",
    "required": ["as_of", "base_day", "days_applied", "last_seq", "window_end"],
    "additionalProperties": False,
    "properties": {
        "as_of": _ISO_DATE,
        "base_day": _ISO_DATE,
        "days_applied": _INTEGER,
        "last_seq": _INTEGER,
        "window_end": _ISO_DATE,
    },
}

INGEST_DATA = {
    "type": "object",
    "required": ["results", "ingest"],
    "additionalProperties": False,
    "properties": {
        "results": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["day", "applied", "events", "replayed"],
                "additionalProperties": False,
                "properties": {
                    "day": _ISO_DATE,
                    "applied": _INTEGER,
                    "events": _INTEGER,
                    "replayed": _BOOLEAN,
                },
            },
        },
        "ingest": INGEST_STATUS,
    },
}

RELOAD_DATA = {
    "type": "object",
    "required": ["status", "window", "index"],
    "additionalProperties": False,
    "properties": {
        "status": {"const": "reloaded"},
        "window": {"type": "array", "items": _ISO_DATE},
        "index": {"type": "object"},
    },
}


def endpoint(
    method: str,
    path: str,
    summary: str,
    *,
    versioned: bool = True,
    mounted: str = "always",
    params: dict | None = None,
    request_body: str | None = None,
    responses: dict | None = None,
) -> dict:
    """One endpoint descriptor, in the contract file's shape."""
    return {
        "method": method,
        "path": path,
        "summary": summary,
        "versioned": versioned,
        "mounted": mounted,
        "params": params or {},
        "request_body": request_body,
        "responses": responses or {},
    }


def _json_response(schema: dict, description: str) -> dict:
    return {
        "content_type": "application/json",
        "description": description,
        "schema": schema,
    }


CONTRACT = {
    "contract": "repro-drop serving surface",
    "api_version": API_VERSION,
    "error_codes": ERROR_CODES,
    "error_envelope": ERROR_ENVELOPE,
    "limits": {
        "max_batch_bytes": MAX_BATCH_BYTES,
        "watch_timeout_cap_seconds": WATCH_TIMEOUT_CAP,
    },
    "endpoints": [
        endpoint(
            "GET",
            "/v1/status",
            "RFC 6811 / DROP / IRR / BGP status of one prefix on one day",
            params={
                "prefix": "IPv4 prefix (required)",
                "on": "ISO date (default: the window end)",
            },
            responses={
                "200": _json_response(
                    _enveloped(STATUS_DATA), "the prefix status"
                ),
                "400": _json_response(
                    ERROR_ENVELOPE,
                    "query.bad-prefix / query.bad-day / query.bad-request",
                ),
            },
        ),
        endpoint(
            "POST",
            "/v1/batch",
            "Many status lookups in one round trip",
            request_body=(
                '{"queries": [{"prefix": ..., "on": ...} | "PREFIX", ...]} '
                "or a bare JSON list"
            ),
            responses={
                "200": _json_response(
                    _enveloped(
                        {
                            "type": "object",
                            "required": ["results"],
                            "additionalProperties": False,
                            "properties": {
                                "results": {
                                    "type": "array",
                                    "items": STATUS_DATA,
                                }
                            },
                        }
                    ),
                    "one result per query, in request order",
                ),
                "400": _json_response(
                    ERROR_ENVELOPE,
                    "query.batch-parse (every bad item named) "
                    "/ query.bad-request",
                ),
            },
        ),
        endpoint(
            "GET",
            "/v1/watch",
            "Subscriber-visible changes (listings, hijack alarms, ROA "
            "expiries) after a sequence number; long-poll or SSE",
            mounted="incremental mode only (404 otherwise)",
            params={
                "since": "resume after this sequence number (default 0)",
                "timeout": "long-poll seconds, capped at the server limit",
                "mode": "json (default) or sse",
            },
            responses={
                "200": _json_response(
                    _enveloped(WATCH_DATA),
                    "events after `since` (JSON mode); SSE mode answers "
                    f"`{SSE_CONTENT_TYPE}` with id/event/data frames",
                ),
                "400": _json_response(ERROR_ENVELOPE, "query.bad-request"),
            },
        ),
        endpoint(
            "POST",
            "/v1/ingest",
            "Apply the next day (or days) of deltas to the served index",
            mounted="incremental mode only (404 otherwise)",
            request_body=(
                'empty (one day), {"day": "<iso>"} (through that day), '
                'or {"days": N}'
            ),
            responses={
                "200": _json_response(
                    _enveloped(INGEST_DATA), "per-day results + ingest state"
                ),
                "400": _json_response(
                    ERROR_ENVELOPE, "query.bad-request / query.bad-day"
                ),
                "409": _json_response(
                    ERROR_ENVELOPE,
                    "ingest.failed: window exhausted or target out of range",
                ),
                "500": _json_response(
                    ERROR_ENVELOPE,
                    "ingest.failed: apply died; the previous day serves on",
                ),
            },
        ),
        endpoint(
            "POST",
            "/v1/admin/reload",
            "Rebuild and atomically swap the served index",
            mounted="async daemon with a reloader only (404 otherwise)",
            responses={
                "200": _json_response(
                    _enveloped(RELOAD_DATA), "the fresh health snapshot"
                ),
                "500": _json_response(
                    ERROR_ENVELOPE,
                    "query.reload-failed; the old index serves on",
                ),
            },
        ),
        endpoint(
            "GET",
            "/healthz",
            "Operational monitoring body (not enveloped, not versioned)",
            versioned=False,
            responses={
                "200": _json_response(
                    {"type": "object"},
                    "status/counters/window/index sizes; incremental mode "
                    "adds an `ingest` block",
                ),
                "503": _json_response({"type": "object"}, "draining"),
            },
        ),
        endpoint(
            "GET",
            "/metrics",
            "Prometheus exposition (not JSON, not versioned)",
            versioned=False,
            responses={
                "200": {
                    "content_type": PROMETHEUS_CONTENT_TYPE,
                    "description": "metrics exposition",
                    "schema": None,
                },
                "503": _json_response({"type": "object"}, "draining"),
            },
        ),
    ],
}


def render() -> str:
    """The contract as the canonical ``docs/api-contract.json`` text."""
    return json.dumps(CONTRACT, indent=2, sort_keys=True) + "\n"


# ---------------------------------------------------------------------------
# the in-process validator
# ---------------------------------------------------------------------------

_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "integer": int,
    "number": (int, float),
    "boolean": bool,
    "null": type(None),
}


def _type_ok(value: object, name: str) -> bool:
    expected = _TYPES[name]
    if not isinstance(value, expected):
        return False
    # bool subclasses int in Python but not in JSON: a true/false value
    # must never satisfy "integer" or "number".
    if name in ("integer", "number") and isinstance(value, bool):
        return False
    return True


def validate(instance: object, schema: dict, path: str = "$") -> list[str]:
    """Mismatches between ``instance`` and ``schema`` (empty = valid).

    Implements the subset the contract uses: ``type`` (name or list),
    ``const``, ``enum``, ``properties`` / ``required`` /
    ``additionalProperties`` (boolean only), and ``items``.
    """
    errors: list[str] = []
    if "const" in schema and instance != schema["const"]:
        errors.append(
            f"{path}: expected const {schema['const']!r}, got {instance!r}"
        )
    if "enum" in schema and instance not in schema["enum"]:
        errors.append(
            f"{path}: {instance!r} not in enum {schema['enum']!r}"
        )
    declared = schema.get("type")
    if declared is not None:
        names = [declared] if isinstance(declared, str) else list(declared)
        if not any(_type_ok(instance, name) for name in names):
            errors.append(
                f"{path}: expected type {'/'.join(names)}, "
                f"got {type(instance).__name__}"
            )
            return errors  # structural checks below would only cascade
    if isinstance(instance, dict):
        for key in schema.get("required", ()):
            if key not in instance:
                errors.append(f"{path}: missing required key {key!r}")
        properties = schema.get("properties", {})
        for key, subschema in properties.items():
            if key in instance:
                errors.extend(
                    validate(instance[key], subschema, f"{path}.{key}")
                )
        if schema.get("additionalProperties") is False:
            for key in instance:
                if key not in properties:
                    errors.append(f"{path}: unexpected key {key!r}")
    if isinstance(instance, list) and "items" in schema:
        for position, item in enumerate(instance):
            errors.extend(
                validate(item, schema["items"], f"{path}[{position}]")
            )
    return errors
