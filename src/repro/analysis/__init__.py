"""The paper's analyses, one module per experiment (see DESIGN.md §4)."""

from .alarm_eval import AlarmEvaluation, MonitoredHijack, evaluate_alarms
from .classification import CategoryBar, ClassificationResult, classify_drop
from .common import DropEntryView, detect_incidents, load_entries
from .counterfactuals import (
    As0Counterfactual,
    RovCounterfactual,
    as0_counterfactual,
    rov_counterfactual,
)
from .deallocation import DeallocationResult, analyze_deallocation
from .irr_effectiveness import IrrEffectiveness, IrrTiming, analyze_irr
from .maxlength import MaxLengthAudit, VulnerableRoa, audit_maxlength
from .peer_filtering import (
    As0FilteringResult,
    DropFilteringResult,
    detect_as0_filtering,
    detect_drop_filtering,
)
from .roa_status import RoaStatusPoint, RoaStatusResult, analyze_roa_status
from .serial_hijackers import (
    OriginProfile,
    SerialHijackerReport,
    profile_origins,
)
from .rpki_effectiveness import (
    PresignedHijack,
    RpkiEffectiveness,
    RpkiValidHijack,
    analyze_rpki_effectiveness,
    find_sibling_prefixes,
)
from .rpki_uptake import RegionUptake, Table1, analyze_rpki_uptake
from .survival import SurvivalCurve, SurvivalResult, analyze_survival
from .unallocated import (
    UnallocatedListing,
    UnallocatedResult,
    analyze_unallocated,
)
from .visibility import VisibilityResult, analyze_visibility

# Imported last: substrate pulls in repro.runtime, whose runner imports
# repro.reporting, which re-enters this package — every name above must
# already be bound when that happens.
from .substrate import (  # noqa: E402
    AnalysisSubstrate,
    BatchedDaySpaces,
    SubstrateLoadError,
    compute_roa_status,
)

__all__ = [
    "AlarmEvaluation",
    "AnalysisSubstrate",
    "BatchedDaySpaces",
    "SubstrateLoadError",
    "As0Counterfactual",
    "As0FilteringResult",
    "CategoryBar",
    "ClassificationResult",
    "DeallocationResult",
    "DropEntryView",
    "DropFilteringResult",
    "IrrEffectiveness",
    "MaxLengthAudit",
    "IrrTiming",
    "PresignedHijack",
    "RegionUptake",
    "RovCounterfactual",
    "RoaStatusPoint",
    "RoaStatusResult",
    "RpkiEffectiveness",
    "RpkiValidHijack",
    "SurvivalCurve",
    "SurvivalResult",
    "Table1",
    "UnallocatedListing",
    "UnallocatedResult",
    "VisibilityResult",
    "VulnerableRoa",
    "analyze_deallocation",
    "as0_counterfactual",
    "audit_maxlength",
    "analyze_irr",
    "analyze_roa_status",
    "analyze_rpki_effectiveness",
    "analyze_rpki_uptake",
    "analyze_survival",
    "analyze_unallocated",
    "analyze_visibility",
    "classify_drop",
    "compute_roa_status",
    "detect_as0_filtering",
    "detect_drop_filtering",
    "detect_incidents",
    "find_sibling_prefixes",
    "MonitoredHijack",
    "OriginProfile",
    "SerialHijackerReport",
    "profile_origins",
    "evaluate_alarms",
    "load_entries",
    "rov_counterfactual",
]
