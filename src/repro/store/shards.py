"""Columnar pack/unpack for background world-build shard results.

The sharded world build used to ship each shard's result back to the
parent as a pickled object graph — hundreds of thousands of dataclass
instances whose pickling (in the workers) and unpickling (serialized in
the parent) cost more than generating them, which is why ``jobs=4`` was
*slower* than serial (BENCH_world.json).  Workers now flatten their
result into one in-memory container blob (this module), and the parent
rebuilds the objects in a tight loop: transfer shrinks ~10×, the
per-object pickle protocol disappears, and AS paths are interned once
per shard instead of serialized per route.

Shard-invariant values never travel at all: every background route in a
shard shares the same ``observers`` frozenset and every ROA the same
``trust_anchor``, so both are reattached from the parent's task context
at unpack time.  Byte-identity of the merged world against the serial
build is pinned by the existing golden tests.
"""

from __future__ import annotations

from datetime import date
from typing import NamedTuple

from array import array

from ..bgp.messages import ASPath
from ..bgp.ribs import RouteInterval
from ..net.prefix import IPv4Prefix
from ..rpki.roa import Roa, RoaRecord
from .container import StoreReader, build_store

__all__ = ["ShardColumns", "pack_background_shard", "unpack_background_shard"]

_KIND = "background-shard"
_NO_MAXLEN = 255


class ShardColumns(NamedTuple):
    """A shard's output rebuilt from columns (same shape the builder
    merges: ``routes`` / ``roas`` / ``allocations`` / ``attachments``)."""

    routes: tuple[RouteInterval, ...]
    roas: tuple[RoaRecord, ...]
    allocations: tuple[tuple[int, int, str], ...]
    attachments: tuple[tuple[int, tuple[int, ...]], ...]


def _to_day(day: date | None) -> int:
    return 0 if day is None else day.toordinal()


def _from_day(ordinal: int) -> date | None:
    return None if ordinal == 0 else date.fromordinal(ordinal)


def pack_background_shard(result) -> bytes:
    """Flatten one shard result (``routes``/``roas``/``allocations``/
    ``attachments``) into a container blob for the pool pipe."""
    paths: dict[ASPath, int] = {}
    path_off = array("I", [0])
    path_asn = array("I")

    def path_ref(path: ASPath) -> int:
        ref = paths.get(path)
        if ref is None:
            path_asn.extend(path.asns)
            path_off.append(len(path_asn))
            ref = paths[path] = len(path_off) - 2
        return ref

    rt_net = array("I")
    rt_len = array("B")
    rt_path = array("I")
    rt_start = array("I")
    rt_end = array("I")
    for route in result.routes:
        rt_net.append(route.prefix.network)
        rt_len.append(route.prefix.length)
        rt_path.append(path_ref(route.path))
        rt_start.append(_to_day(route.start))
        rt_end.append(_to_day(route.end))

    roa_net = array("I")
    roa_len = array("B")
    roa_asn = array("I")
    roa_maxlen = array("B")
    roa_created = array("I")
    roa_removed = array("I")
    for record in result.roas:
        roa = record.roa
        roa_net.append(roa.prefix.network)
        roa_len.append(roa.prefix.length)
        roa_asn.append(roa.asn)
        roa_maxlen.append(
            _NO_MAXLEN if roa.max_length is None else roa.max_length
        )
        roa_created.append(_to_day(record.created))
        roa_removed.append(_to_day(record.removed))

    al_start = array("Q")
    al_end = array("Q")
    holder_off = array("I", [0])
    holder_dat = bytearray()
    for start, end, holder in result.allocations:
        al_start.append(start)
        al_end.append(end)
        holder_dat.extend(holder.encode("utf-8"))
        holder_off.append(len(holder_dat))

    at_asn = array("I")
    at_off = array("I", [0])
    at_prov = array("I")
    for asn, providers in result.attachments:
        at_asn.append(asn)
        at_prov.extend(providers)
        at_off.append(len(at_prov))

    return build_store(
        {"kind": _KIND},
        [
            ("path.off", "I", path_off),
            ("path.asn", "I", path_asn),
            ("rt.net", "I", rt_net),
            ("rt.len", "B", rt_len),
            ("rt.path", "I", rt_path),
            ("rt.start", "I", rt_start),
            ("rt.end", "I", rt_end),
            ("roa.net", "I", roa_net),
            ("roa.len", "B", roa_len),
            ("roa.asn", "I", roa_asn),
            ("roa.maxlen", "B", roa_maxlen),
            ("roa.created", "I", roa_created),
            ("roa.removed", "I", roa_removed),
            ("al.start", "Q", al_start),
            ("al.end", "Q", al_end),
            ("hold.off", "I", holder_off),
            ("hold.dat", "B", bytes(holder_dat)),
            ("at.asn", "I", at_asn),
            ("at.off", "I", at_off),
            ("at.prov", "I", at_prov),
        ],
    )


def unpack_background_shard(
    blob: bytes,
    *,
    observers: frozenset[int],
    trust_anchor: str,
) -> ShardColumns:
    """Rebuild a shard's objects from its packed columns.

    ``observers`` and ``trust_anchor`` come from the shard's task (they
    are shard-invariant and never serialized); the reconstructed objects
    are equal to the worker's originals field for field.
    """
    reader = StoreReader.from_bytes(blob)
    path_off = reader.view("path.off", "I")
    path_asn = reader.view("path.asn", "I")
    paths = [
        ASPath(tuple(path_asn[path_off[i] : path_off[i + 1]]))
        for i in range(len(path_off) - 1)
    ]

    rt_net = reader.view("rt.net", "I")
    rt_len = reader.view("rt.len", "B")
    rt_path = reader.view("rt.path", "I")
    rt_start = reader.view("rt.start", "I")
    rt_end = reader.view("rt.end", "I")
    routes = tuple(
        RouteInterval(
            prefix=IPv4Prefix(rt_net[i], rt_len[i]),
            path=paths[rt_path[i]],
            start=_from_day(rt_start[i]),  # type: ignore[arg-type]
            end=_from_day(rt_end[i]),
            observers=observers,
        )
        for i in range(len(rt_net))
    )

    roa_net = reader.view("roa.net", "I")
    roa_len = reader.view("roa.len", "B")
    roa_asn = reader.view("roa.asn", "I")
    roa_maxlen = reader.view("roa.maxlen", "B")
    roa_created = reader.view("roa.created", "I")
    roa_removed = reader.view("roa.removed", "I")
    roas = tuple(
        RoaRecord(
            roa=Roa(
                prefix=IPv4Prefix(roa_net[i], roa_len[i]),
                asn=roa_asn[i],
                max_length=(
                    None if roa_maxlen[i] == _NO_MAXLEN else roa_maxlen[i]
                ),
                trust_anchor=trust_anchor,
            ),
            created=_from_day(roa_created[i]),  # type: ignore[arg-type]
            removed=_from_day(roa_removed[i]),
        )
        for i in range(len(roa_net))
    )

    al_start = reader.view("al.start", "Q")
    al_end = reader.view("al.end", "Q")
    holder_off = reader.view("hold.off", "I")
    holder_dat = reader.view("hold.dat", "B")
    allocations = tuple(
        (
            al_start[i],
            al_end[i],
            bytes(
                holder_dat[holder_off[i] : holder_off[i + 1]]
            ).decode("utf-8"),
        )
        for i in range(len(al_start))
    )

    at_asn = reader.view("at.asn", "I")
    at_off = reader.view("at.off", "I")
    at_prov = reader.view("at.prov", "I")
    attachments = tuple(
        (at_asn[i], tuple(at_prov[at_off[i] : at_off[i + 1]]))
        for i in range(len(at_asn))
    )
    return ShardColumns(routes, roas, allocations, attachments)
