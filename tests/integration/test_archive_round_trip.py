"""Round-trip integration: analyses agree on in-memory vs on-disk worlds.

The world serializes to the real archive formats (Firehol DROP snapshots,
RPSL/ROA/registry journals, MRT-like BGP JSONL) and reloads without
ground truth.  Every analysis must produce the same result either way —
this is what guarantees the analyses consume only archive-shaped data.
"""

import pytest

from repro.analysis import (
    analyze_deallocation,
    analyze_irr,
    analyze_rpki_effectiveness,
    analyze_rpki_uptake,
    analyze_unallocated,
    analyze_visibility,
    classify_drop,
    detect_drop_filtering,
    load_entries,
)
from repro.drop.categories import Category
from repro.synth import ScenarioConfig, build_world, load_world, save_world


@pytest.fixture(scope="module")
def worlds(tmp_path_factory):
    original = build_world(ScenarioConfig.tiny())
    directory = tmp_path_factory.mktemp("archives") / "world"
    save_world(original, directory, drop_step_days=1)
    reloaded = load_world(directory)
    return original, reloaded


class TestStructurePreserved:
    def test_drop_episodes_identical(self, worlds):
        original, reloaded = worlds
        def key(world):
            return sorted(
                (str(e.prefix), e.added, e.removed, e.sbl_id)
                for e in world.drop.episodes()
            )
        assert key(reloaded) == key(original)

    def test_bgp_intervals_identical(self, worlds):
        original, reloaded = worlds
        def key(world):
            return sorted(
                (str(i.prefix), str(i.path), i.start, i.end,
                 tuple(sorted(i.observers)))
                for i in world.bgp.all_intervals()
            )
        assert key(reloaded) == key(original)

    def test_roas_identical(self, worlds):
        original, reloaded = worlds
        def key(world):
            return sorted(
                (str(r.roa.prefix), r.roa.asn, r.roa.max_length,
                 r.roa.trust_anchor, r.created, r.removed)
                for r in world.roas.records()
            )
        assert key(reloaded) == key(original)

    def test_reloaded_has_no_ground_truth(self, worlds):
        _, reloaded = worlds
        assert not reloaded.truth.drop
        assert reloaded.truth.case_study is None


class TestAnalysesAgree:
    def test_classification(self, worlds):
        original, reloaded = worlds
        a = classify_drop(original)
        b = classify_drop(reloaded)
        for category in Category:
            assert a.bar(category).total_prefixes == (
                b.bar(category).total_prefixes
            )
        assert a.incident_prefixes == b.incident_prefixes

    def test_visibility(self, worlds):
        original, reloaded = worlds
        a = analyze_visibility(original)
        b = analyze_visibility(reloaded)
        assert a.withdrawal_rate == b.withdrawal_rate
        assert a.category_withdrawal == b.category_withdrawal

    def test_filtering_peers(self, worlds):
        original, reloaded = worlds
        a = detect_drop_filtering(original)
        b = detect_drop_filtering(reloaded)
        assert a.suspect_peer_ids == b.suspect_peer_ids

    def test_table1(self, worlds):
        original, reloaded = worlds
        a = analyze_rpki_uptake(original)
        b = analyze_rpki_uptake(reloaded)
        assert a.rows == b.rows
        assert a.signed_different_asn == b.signed_different_asn

    def test_irr(self, worlds):
        original, reloaded = worlds
        a = analyze_irr(original)
        b = analyze_irr(reloaded)
        assert a.with_route_object == b.with_route_object
        assert a.hijacker_asn_matches == b.hijacker_asn_matches
        assert a.org_id_counts == b.org_id_counts

    def test_deallocation(self, worlds):
        original, reloaded = worlds
        a = analyze_deallocation(original)
        b = analyze_deallocation(reloaded)
        assert a.removed_deallocated == b.removed_deallocated
        assert a.by_category == b.by_category

    def test_rpki_effectiveness(self, worlds):
        original, reloaded = worlds
        a = analyze_rpki_effectiveness(original)
        b = analyze_rpki_effectiveness(reloaded)
        assert a.presigned_count == b.presigned_count
        assert len(a.rpki_valid_hijacks) == len(b.rpki_valid_hijacks)
        if a.rpki_valid_hijacks:
            assert (
                a.rpki_valid_hijacks[0].siblings
                == b.rpki_valid_hijacks[0].siblings
            )

    def test_unallocated(self, worlds):
        original, reloaded = worlds
        a = analyze_unallocated(original)
        b = analyze_unallocated(reloaded)
        assert a.total == b.total
        assert [l.prefix for l in a.listings] == [
            l.prefix for l in b.listings
        ]

    def test_entry_views_agree(self, worlds):
        original, reloaded = worlds
        a = {e.prefix: e for e in load_entries(original)}
        b = {e.prefix: e for e in load_entries(reloaded)}
        assert set(a) == set(b)
        for prefix, entry in a.items():
            other = b[prefix]
            assert entry.categories == other.categories, prefix
            assert entry.listed == other.listed
            assert entry.region == other.region
            assert entry.incident == other.incident
