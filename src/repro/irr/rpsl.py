"""RPSL (Routing Policy Specification Language) object model and parser.

IRR databases such as Merit's RADb are flat files of RPSL objects:
attribute/value pairs, one object per paragraph, the first attribute naming
the class.  The paper's §5 analysis needs ``route`` objects (prefix +
``origin:`` ASN + the registering ``mnt-by:``/org) and their registration
timestamps; we also model ``mntner`` and ``organisation`` objects since the
ORG-ID clustering finding ("49 of 57 route objects shared three ORG-IDs")
depends on them.

The parser accepts the standard flat-file conventions: ``%`` and ``#``
comment lines, continuation lines starting with whitespace or ``+``, and
blank-line object separation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from ..net.asn import parse_asn
from ..net.prefix import IPv4Prefix

__all__ = [
    "Maintainer",
    "Organisation",
    "RouteObject",
    "RpslError",
    "RpslObject",
    "emit_objects",
    "parse_objects",
]


class RpslError(ValueError):
    """Raised for malformed RPSL text or objects."""


@dataclass(frozen=True, slots=True)
class RpslObject:
    """A generic RPSL object: ordered (attribute, value) pairs."""

    attributes: tuple[tuple[str, str], ...]

    def __post_init__(self) -> None:
        if not self.attributes:
            raise RpslError("RPSL object must have at least one attribute")

    @property
    def object_class(self) -> str:
        """The class name (the first attribute's name)."""
        return self.attributes[0][0]

    @property
    def key(self) -> str:
        """The primary key (the first attribute's value)."""
        return self.attributes[0][1]

    def first(self, name: str) -> str | None:
        """The first value of attribute ``name``, or ``None``."""
        for attr, value in self.attributes:
            if attr == name:
                return value
        return None

    def all(self, name: str) -> list[str]:
        """All values of attribute ``name``, in order."""
        return [value for attr, value in self.attributes if attr == name]

    def __str__(self) -> str:
        width = max(len(attr) for attr, _ in self.attributes) + 1
        return "\n".join(
            f"{attr + ':':<{width}} {value}".rstrip()
            for attr, value in self.attributes
        )


def parse_objects(text: str) -> Iterator[RpslObject]:
    """Parse a flat RPSL file into objects."""
    pending: list[tuple[str, str]] = []
    for raw_line in text.splitlines():
        line = raw_line.rstrip()
        if line.startswith(("%", "#")):
            continue
        if not line.strip():
            if pending:
                yield RpslObject(tuple(pending))
                pending = []
            continue
        if line[0] in (" ", "\t", "+"):
            if not pending:
                raise RpslError(f"continuation before any attribute: {line!r}")
            attr, value = pending[-1]
            continuation = line.lstrip(" \t+").strip()
            pending[-1] = (attr, f"{value} {continuation}".strip())
            continue
        attr, sep, value = line.partition(":")
        if not sep:
            raise RpslError(f"not an attribute line: {line!r}")
        pending.append((attr.strip().lower(), value.strip()))
    if pending:
        yield RpslObject(tuple(pending))


def emit_objects(objects: Iterator[RpslObject] | list[RpslObject]) -> str:
    """Serialize objects to flat-file RPSL, blank-line separated."""
    return "\n\n".join(str(obj) for obj in objects) + "\n"


# -- typed views ---------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class RouteObject:
    """A ``route`` object: the IRR's assertion that ``origin`` may announce
    ``prefix``.

    ``org_id`` carries the registering organisation (RADb exposes this via
    the maintainer's org); ``created`` is the registration timestamp the
    §5 timing analysis relies on.
    """

    prefix: IPv4Prefix
    origin: int
    maintainer: str
    org_id: str | None = None
    descr: str | None = None
    source: str = "RADB"

    @classmethod
    def from_rpsl(cls, obj: RpslObject) -> "RouteObject":
        """Build from a parsed ``route`` RPSL object."""
        if obj.object_class != "route":
            raise RpslError(f"not a route object: {obj.object_class}")
        origin_text = obj.first("origin")
        if origin_text is None:
            raise RpslError(f"route {obj.key} missing origin")
        return cls(
            prefix=IPv4Prefix.parse(obj.key, strict=False),
            origin=parse_asn(origin_text),
            maintainer=obj.first("mnt-by") or "",
            org_id=obj.first("org"),
            descr=obj.first("descr"),
            source=obj.first("source") or "RADB",
        )

    def to_rpsl(self) -> RpslObject:
        """The RPSL representation of this route object."""
        attributes: list[tuple[str, str]] = [
            ("route", str(self.prefix)),
            ("origin", f"AS{self.origin}"),
        ]
        if self.descr:
            attributes.append(("descr", self.descr))
        if self.org_id:
            attributes.append(("org", self.org_id))
        attributes.append(("mnt-by", self.maintainer))
        attributes.append(("source", self.source))
        return RpslObject(tuple(attributes))


@dataclass(frozen=True, slots=True)
class Maintainer:
    """A ``mntner`` object (authentication handle for registrations)."""

    name: str
    org_id: str | None = None
    email: str | None = None

    @classmethod
    def from_rpsl(cls, obj: RpslObject) -> "Maintainer":
        if obj.object_class != "mntner":
            raise RpslError(f"not a mntner object: {obj.object_class}")
        return cls(
            name=obj.key,
            org_id=obj.first("org"),
            email=obj.first("upd-to"),
        )

    def to_rpsl(self) -> RpslObject:
        attributes: list[tuple[str, str]] = [("mntner", self.name)]
        if self.org_id:
            attributes.append(("org", self.org_id))
        if self.email:
            attributes.append(("upd-to", self.email))
        attributes.append(("source", "RADB"))
        return RpslObject(tuple(attributes))


@dataclass(frozen=True, slots=True)
class Organisation:
    """An ``organisation`` object (the ORG-ID the paper clusters on)."""

    org_id: str
    name: str

    @classmethod
    def from_rpsl(cls, obj: RpslObject) -> "Organisation":
        if obj.object_class != "organisation":
            raise RpslError(f"not an organisation object: {obj.object_class}")
        return cls(org_id=obj.key, name=obj.first("org-name") or "")

    def to_rpsl(self) -> RpslObject:
        return RpslObject(
            (
                ("organisation", self.org_id),
                ("org-name", self.name),
                ("source", "RADB"),
            )
        )
