"""The asyncio serving tier (repro.query.aserver).

Three test families:

* **contract parity** — every endpoint of the async tier answers
  byte-for-byte what the threaded ``QueryServer`` answers, over live
  sockets, driven in lockstep (identical request bytes to both) so even
  the counter values in ``/healthz`` line up;
* **concurrency** — interleaved requests match serial answers, one
  connection can pipeline, hot reload under load never produces a torn
  response, a failed reload keeps the old index serving;
* **drain** — SIGTERM semantics: healthz flips to 503, in-flight
  requests finish (pinned with a ``slow@server.accept`` fault), the
  worker threads join, and the per-worker spans are re-homed into the
  run's trace.
"""

import asyncio
import contextlib
import json
import threading

import pytest

from repro.query import AsyncQueryServer, QueryEngine, QueryServer
from repro.query.http import envelope
from repro.runtime import Instrumentation
from repro.runtime.faults import injected

from .conftest import AioClient, _read_reply, fetch

# ---------------------------------------------------------------------------
# harness
# ---------------------------------------------------------------------------


def _start_threaded(index):
    srv = QueryServer(
        QueryEngine(index, instrumentation=Instrumentation()), "127.0.0.1", 0
    )
    thread = threading.Thread(target=srv.serve_until_shutdown, daemon=True)
    thread.start()
    return srv, thread


def _start_async(engine, **kwargs):
    srv = AsyncQueryServer(engine, "127.0.0.1", 0, **kwargs)
    srv.start()
    thread = threading.Thread(target=srv.serve_until_shutdown, daemon=True)
    thread.start()
    return srv, thread


@contextlib.contextmanager
def running_async(engine, **kwargs):
    srv, thread = _start_async(engine, **kwargs)
    try:
        yield srv
    finally:
        srv.drain()
        thread.join(timeout=20)
        assert not thread.is_alive()


@pytest.fixture(scope="module")
def pair(index):
    """One threaded and one async server over the same index.

    Every test touching this fixture sends the *identical* request to
    both servers (see :func:`both`), so their counter streams — visible
    through ``/healthz`` — stay equal for the whole module.  The async
    server runs with the response cache off for the same reason: a
    cache hit skips the engine's lookup counter.
    """
    threaded, t_thread = _start_threaded(index)
    aserver, a_thread = _start_async(
        QueryEngine(index, instrumentation=Instrumentation()),
        workers=2,
        cache_size=0,
    )
    yield threaded, aserver
    threaded.shutdown()
    aserver.drain()
    t_thread.join(timeout=10)
    a_thread.join(timeout=20)
    assert not t_thread.is_alive() and not a_thread.is_alive()


def both(pair, method, target, body=None):
    """Send one identical request to both servers; assert byte parity."""
    threaded, aserver = pair
    expected = fetch(threaded.server_address, method, target, body)
    actual = fetch(aserver.server_address, method, target, body)
    assert actual.status == expected.status
    assert actual.headers.get("content-type") == expected.headers.get(
        "content-type"
    )
    assert actual.body == expected.body
    return actual


@pytest.fixture(scope="module")
def pairs(index):
    days = [index.window.start, index.window.end]
    prefixes = [p for i, p in enumerate(index.drop) if i % 101 == 0]
    prefixes += [p for i, p in enumerate(index.routes) if i % 501 == 0]
    return [(p, d) for p in prefixes for d in days]


# ---------------------------------------------------------------------------
# contract parity
# ---------------------------------------------------------------------------


class TestContractParity:
    def test_status_pairs(self, pair, pairs):
        for prefix, day in pairs:
            reply = both(
                pair, "GET", f"/v1/status?prefix={prefix}&on={day.isoformat()}"
            )
            assert reply.status == 200

    def test_status_default_day(self, pair, index):
        prefix = next(iter(index.routes))
        reply = both(pair, "GET", f"/v1/status?prefix={prefix}")
        body = json.loads(reply.body)
        assert body["data"]["on"] == index.window.end.isoformat()

    def test_batch_query_dicts(self, pair, pairs):
        payload = {
            "queries": [
                {"prefix": str(p), "on": d.isoformat()} for p, d in pairs
            ]
        }
        reply = both(
            pair, "POST", "/v1/batch", json.dumps(payload).encode()
        )
        assert reply.status == 200
        results = json.loads(reply.body)["data"]["results"]
        assert len(results) == len(pairs)

    def test_batch_bare_list_and_strings(self, pair, index):
        prefix = str(next(iter(index.routes)))
        reply = both(
            pair, "POST", "/v1/batch", json.dumps([prefix]).encode()
        )
        assert reply.status == 200
        results = json.loads(reply.body)["data"]["results"]
        assert results[0]["prefix"] == prefix

    @pytest.mark.parametrize(
        ("method", "target", "body", "status", "code"),
        [
            ("GET", "/v1/status", None, 400, "query.bad-prefix"),
            (
                "GET", "/v1/status?prefix=999.1.2.3/8", None,
                400, "query.bad-prefix",
            ),
            (
                "GET", "/v1/status?prefix=192.0.2.0/24&on=2021-02-30", None,
                400, "query.bad-day",
            ),
            ("GET", "/v1/nope", None, 404, "query.not-found"),
            ("POST", "/v1/nope", b"{}", 404, "query.not-found"),
            ("POST", "/v1/batch", b"", 400, "query.bad-request"),
            ("POST", "/v1/batch", b"{nope", 400, "query.bad-request"),
            (
                "POST", "/v1/batch", b'{"queries": "x"}',
                400, "query.bad-request",
            ),
            ("POST", "/v1/batch", b"[42]", 400, "query.batch-parse"),
            # No reload factory on either server: the admin endpoint
            # does not exist, byte-identically.
            ("POST", "/v1/admin/reload", b"", 404, "query.not-found"),
        ],
    )
    def test_error_payload_parity(
        self, pair, method, target, body, status, code
    ):
        reply = both(pair, method, target, body)
        assert reply.status == status
        payload = json.loads(reply.body)
        assert set(payload) == {"api", "error"}
        assert set(payload["error"]) == {"code", "message"}
        assert payload["error"]["code"] == code

    def test_missing_prefix_message_unchanged(self, pair):
        reply = both(pair, "GET", "/v1/status")
        payload = json.loads(reply.body)
        assert payload["error"]["message"] == "missing prefix"

    def test_all_bad_batch_items_reported_together(self, pair, index):
        prefix = str(next(iter(index.routes)))
        payload = [prefix, "999.1.2.3/8", 42, {"prefix": prefix, "on": "x"}]
        reply = both(
            pair, "POST", "/v1/batch", json.dumps(payload).encode()
        )
        assert reply.status == 400
        body = json.loads(reply.body)
        assert body["error"]["code"] == "query.batch-parse"
        assert "3 bad queries" in body["error"]["message"]
        for marker in ("[1]", "[2]", "[3]"):
            assert marker in body["error"]["message"]

    def test_healthz_parity_with_timing_masked(self, pair, index):
        # The `serve_*_us_total` counters are wall-clock microseconds —
        # the one part of the contract that legitimately differs.
        threaded, aserver = pair
        replies = [
            fetch(srv.server_address, "GET", "/healthz")
            for srv in (threaded, aserver)
        ]
        bodies = [json.loads(reply.body) for reply in replies]
        for body in bodies:
            body["counters"] = {
                name: count
                for name, count in body["counters"].items()
                if not name.endswith("_us_total")
            }
        # The lockstep fixture discipline makes even the counts equal
        # (both healthz requests above included).
        assert bodies[0] == bodies[1]
        assert bodies[0]["index"] == index.sizes()

    def test_metrics_parity_of_series(self, pair):
        threaded, aserver = pair
        texts = [
            fetch(srv.server_address, "GET", "/metrics").body.decode()
            for srv in (threaded, aserver)
        ]

        def series(text):
            return {
                line.rsplit(" ", 1)[0]
                for line in text.splitlines()
                if line and not line.startswith("#")
            }

        def comments(text):
            return {
                line for line in text.splitlines() if line.startswith("# ")
            }

        assert series(texts[0]) == series(texts[1])
        assert comments(texts[0]) == comments(texts[1])
        for text in texts:
            assert "# TYPE repro_server_reload_total counter" in text
            assert (
                "# TYPE repro_server_reload_failures_total counter" in text
            )

    def test_healthz_first_request_byte_identical(self, index):
        # Fresh servers, no traffic: no timing counters exist yet, so
        # the very first /healthz answer is comparable to the last byte.
        threaded, t_thread = _start_threaded(index)
        try:
            with running_async(
                QueryEngine(index, instrumentation=Instrumentation()),
                workers=1,
                cache_size=0,
            ) as aserver:
                expected = fetch(threaded.server_address, "GET", "/healthz")
                actual = fetch(aserver.server_address, "GET", "/healthz")
                assert actual.status == expected.status == 200
                assert actual.body == expected.body
        finally:
            threaded.shutdown()
            t_thread.join(timeout=10)


# ---------------------------------------------------------------------------
# concurrency
# ---------------------------------------------------------------------------


class TestConcurrency:
    def test_interleaved_requests_match_serial(self, index):
        days = [index.window.start, index.window.end]
        prefixes = [p for i, p in enumerate(index.routes) if i % 211 == 0]
        targets = [
            f"/v1/status?prefix={p}&on={d.isoformat()}"
            for p in prefixes
            for d in days
        ][:20]
        assert len(targets) >= 4
        with running_async(QueryEngine(index), workers=2) as server:
            address = server.server_address

            async def serial():
                client = await AioClient.open(address)
                try:
                    return {
                        t: (await client.request("GET", t)).body
                        for t in targets
                    }
                finally:
                    await client.close()

            expected = asyncio.run(serial())

            async def storm():
                async def one_client(offset):
                    client = await AioClient.open(address)
                    got = []
                    try:
                        for i in range(25):
                            t = targets[(offset + i) % len(targets)]
                            reply = await client.request("GET", t)
                            got.append((t, reply.status, reply.body))
                    finally:
                        await client.close()
                    return got

                chunks = await asyncio.gather(
                    *(one_client(i * 3) for i in range(8))
                )
                return [item for chunk in chunks for item in chunk]

            results = asyncio.run(storm())
        assert len(results) == 200
        for target, status, body in results:
            assert status == 200
            assert body == expected[target]

    def test_keepalive_pipelining_answers_in_order(self, index):
        days = [index.window.start, index.window.end]
        prefix = next(iter(index.routes))
        targets = [
            f"/v1/status?prefix={prefix}&on={d.isoformat()}" for d in days
        ] * 5
        with running_async(QueryEngine(index), workers=1) as server:
            address = server.server_address

            async def go():
                client = await AioClient.open(address)
                try:
                    singles = {
                        t: (await client.request("GET", t)).body
                        for t in set(targets)
                    }
                    replies = await client.pipeline(
                        [("GET", t, None) for t in targets]
                    )
                    # The connection survives the burst.
                    again = await client.request("GET", targets[0])
                    return singles, replies, again
                finally:
                    await client.close()

            singles, replies, again = asyncio.run(go())
        assert [r.status for r in replies] == [200] * len(targets)
        assert [r.body for r in replies] == [singles[t] for t in targets]
        assert again.body == singles[targets[0]]


# ---------------------------------------------------------------------------
# hot reload
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def index_b(tmp_path_factory):
    """A second, distinguishable world: same scale, different seed."""
    from repro.query import build_index
    from repro.runtime import WorldCache
    from repro.synth import ScenarioConfig

    cache = WorldCache(tmp_path_factory.mktemp("reload-cache"))
    stored = cache.fetch(ScenarioConfig.tiny(seed=7))
    return build_index(stored.world, key=stored.key)


def _distinguishing_target(index, index_b):
    """A status target whose answer differs between the two indexes."""
    day = index.window.end
    engine_a, engine_b = QueryEngine(index), QueryEngine(index_b)
    for prefix in list(index.drop)[:64]:
        answer_a = engine_a.lookup(prefix, day).to_dict()
        answer_b = engine_b.lookup(prefix, day).to_dict()
        if answer_a != answer_b:
            target = f"/v1/status?prefix={prefix}&on={day.isoformat()}"
            return (
                target,
                json.dumps(envelope(answer_a), sort_keys=True).encode(),
                json.dumps(envelope(answer_b), sort_keys=True).encode(),
            )
    raise AssertionError("worlds A and B are indistinguishable")


class TestHotReload:
    def test_reload_under_load_is_never_torn(self, index, index_b):
        instr = Instrumentation()
        target, bytes_a, bytes_b = _distinguishing_target(index, index_b)
        factory = lambda: QueryEngine(index_b, instrumentation=instr)  # noqa: E731
        with running_async(
            QueryEngine(index, instrumentation=instr),
            workers=2,
            reload_factory=factory,
        ) as server:
            address = server.server_address

            async def go():
                looker = await AioClient.open(address)
                admin = await AioClient.open(address)
                bodies = []
                done = asyncio.Event()

                async def pound():
                    while not done.is_set():
                        reply = await looker.request("GET", target)
                        assert reply.status == 200
                        bodies.append(reply.body)

                task = asyncio.create_task(pound())
                await asyncio.sleep(0.05)
                reply = await admin.request("POST", "/v1/admin/reload", b"")
                done.set()
                await task
                after = await looker.request("GET", target)
                await looker.close()
                await admin.close()
                return reply, bodies, after

            reload_reply, bodies, after = asyncio.run(go())
            health = fetch(address, "GET", "/healthz")

        assert reload_reply.status == 200
        payload = json.loads(reload_reply.body)["data"]
        assert payload["status"] == "reloaded"
        assert payload["index"] == index_b.sizes()
        # Every answer is wholly old-world or wholly new-world.
        assert bodies, "lookup loop never ran"
        torn = [b for b in bodies if b not in (bytes_a, bytes_b)]
        assert torn == []
        assert after.body == bytes_b
        assert json.loads(health.body)["index"] == index_b.sizes()
        assert instr.counters["serve_reloads"] == 1

    def test_failed_reload_keeps_old_index(self, index):
        instr = Instrumentation()

        def factory():
            raise RuntimeError("rebuild exploded")

        with running_async(
            QueryEngine(index, instrumentation=instr),
            workers=1,
            reload_factory=factory,
        ) as server:
            address = server.server_address
            prefix = next(iter(index.routes))
            target = f"/v1/status?prefix={prefix}"
            before = fetch(address, "GET", target)
            reply = fetch(address, "POST", "/v1/admin/reload", b"")
            after = fetch(address, "GET", target)
            metrics = fetch(address, "GET", "/metrics").body.decode()

        assert reply.status == 500
        payload = json.loads(reply.body)
        assert payload["error"]["code"] == "query.reload-failed"
        assert "rebuild exploded" in payload["error"]["message"]
        assert after.body == before.body
        assert instr.counters["serve_reload_failures"] == 1
        assert "serve_reloads" not in instr.counters
        assert "repro_server_reload_failures_total 1" in metrics
        # Declared up front, but never incremented: TYPE line only.
        assert "# TYPE repro_server_reload_total counter" in metrics
        assert "\nrepro_server_reload_total " not in metrics

    def test_sighup_entrypoint_swallows_failures(self, index, index_b):
        instr = Instrumentation()
        engines = [QueryEngine(index_b, instrumentation=instr)]

        def factory():
            if not engines:
                raise RuntimeError("boom")
            return engines.pop()

        server = AsyncQueryServer(
            QueryEngine(index, instrumentation=instr),
            "127.0.0.1",
            0,
            reload_factory=factory,
        )
        # What the SIGHUP handler thread runs, sans signal glue.
        server._reload_quietly()
        assert server.core.health_snapshot["index"] == index_b.sizes()
        server._reload_quietly()  # factory now fails: swallowed, counted
        assert instr.counters["serve_reloads"] == 1
        assert instr.counters["serve_reload_failures"] == 1
        assert server.core.health_snapshot["index"] == index_b.sizes()


# ---------------------------------------------------------------------------
# drain
# ---------------------------------------------------------------------------


class TestDrain:
    def test_healthz_and_metrics_503_while_draining(self, index):
        instr = Instrumentation()
        with running_async(
            QueryEngine(index, instrumentation=instr), workers=1
        ) as server:
            address = server.server_address
            assert fetch(address, "GET", "/healthz").status == 200
            # The drain window, without stopping the loops: flag only.
            server.core.start_drain()
            reply = fetch(address, "GET", "/healthz")
            assert reply.status == 503
            assert json.loads(reply.body)["status"] == "draining"
            assert reply.headers.get("connection") == "close"
            metrics = fetch(address, "GET", "/metrics")
            assert metrics.status == 503
            assert json.loads(metrics.body)["code"] == "query.draining"

    def test_in_flight_request_finishes_during_drain(self, index):
        instr = Instrumentation()
        prefix = next(iter(index.routes))
        target = f"/v1/status?prefix={prefix}"
        with injected("slow@server.accept+0.4"):
            srv, thread = _start_async(
                QueryEngine(index, instrumentation=instr), workers=2
            )
            address = srv.server_address

            async def go():
                # The admission fault holds this connection's handler
                # (and its worker's loop) for 0.4s with our request
                # already on the wire — then the drain starts.
                client = await AioClient.open(address)
                try:
                    pending = asyncio.create_task(
                        client.request("GET", target)
                    )
                    await asyncio.sleep(0.1)
                    await asyncio.to_thread(srv.drain)
                    return await asyncio.wait_for(pending, timeout=15)
                finally:
                    await client.close()

            reply = asyncio.run(go())
            thread.join(timeout=20)
        assert not thread.is_alive()
        assert reply.status == 200
        assert reply.headers.get("connection") == "close"
        assert instr.counters["serve_drains"] == 1

    def test_drain_is_idempotent_and_rehomes_worker_spans(self, index):
        instr = Instrumentation()
        with running_async(
            QueryEngine(index, instrumentation=instr), workers=2
        ) as server:
            prefix = next(iter(index.routes))
            fetch(server.server_address, "GET", f"/v1/status?prefix={prefix}")
            server.drain()
            server.drain()
            server.shutdown()
        # running_async joined serve_until_shutdown: spans are adopted.
        assert instr.counters["serve_drains"] == 1
        spans = {span.name: span for span in instr.tracer.finished}
        parent = spans["serve-async"]
        workers = [
            span
            for span in instr.tracer.finished
            if span.name == "server-worker"
        ]
        assert len(workers) == 2
        for span in workers:
            assert span.parent_id == parent.span_id
            assert "connections" in span.attributes
            assert "requests" in span.attributes
        assert sum(s.attributes["requests"] for s in workers) == 1


# ---------------------------------------------------------------------------
# malformed Content-Length
# ---------------------------------------------------------------------------


def _raw_request(address, payload: bytes):
    """One request from raw bytes (the conftest helpers always write a
    well-formed Content-Length, so these tests build their own head)."""

    async def go():
        reader, writer = await asyncio.open_connection(*address)
        writer.write(payload)
        await writer.drain()
        reply = await _read_reply(reader)
        writer.close()
        with contextlib.suppress(Exception):
            await writer.wait_closed()
        return reply

    return asyncio.run(go())


class TestMalformedContentLength:
    """Extends the error-body regression table to the one error the
    shared core never sees: a Content-Length that does not parse.  Both
    daemons must answer the same stable-coded ``query.bad-request`` 400
    (the threaded server used to let the ValueError escape the handler
    thread — connection reset, no response; negative values slipped
    through ``int()`` on both)."""

    @pytest.mark.parametrize(
        "value",
        ["nope", "-5", "+3", "12abc", "0x10", "\xb9", "9" * 40 + "x"],
    )
    def test_stable_400_on_both_daemons(self, pair, value):
        threaded, aserver = pair
        head = (
            f"GET /healthz HTTP/1.1\r\nHost: t\r\n"
            f"Content-Length: {value}\r\n\r\n"
        ).encode("latin-1")
        replies = [
            _raw_request(address, head)
            for address in (threaded.server_address, aserver.server_address)
        ]
        for reply in replies:
            assert reply.status == 400
            payload = json.loads(reply.body)
            assert set(payload) == {"api", "error"}
            assert payload["error"]["code"] == "query.bad-request"
        assert replies[0].body == replies[1].body

    def test_valid_zero_length_still_serves(self, pair):
        threaded, aserver = pair
        head = (
            b"GET /healthz HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\n\r\n"
        )
        for address in (threaded.server_address, aserver.server_address):
            assert _raw_request(address, head).status == 200

    def test_negative_length_post_rejected(self, pair):
        threaded, aserver = pair
        head = (
            b"POST /v1/batch HTTP/1.1\r\nHost: t\r\n"
            b"Content-Length: -17\r\n\r\n"
        )
        for address in (threaded.server_address, aserver.server_address):
            reply = _raw_request(address, head)
            assert reply.status == 400
            payload = json.loads(reply.body)
            assert payload["error"]["code"] == "query.bad-request"
