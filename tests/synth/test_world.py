"""World-level invariants of the synthetic generator (tiny scale)."""

from datetime import timedelta

import pytest

from repro.drop.categories import Category
from repro.net.prefix import IPv4Prefix
from repro.rpki.tal import TalSet
from repro.synth import ScenarioConfig, build_world


@pytest.fixture(scope="module")
def world():
    return build_world(ScenarioConfig.tiny())


class TestPopulationCounts:
    def test_712_unique_prefixes(self, world):
        assert len(world.drop.unique_prefixes()) == 712

    def test_526_sbl_records(self, world):
        listed = {
            e.prefix for e in world.drop.episodes()
        }
        with_record = sum(
            1
            for prefix in listed
            if world.sbl.record_for_prefix(prefix) is not None
        )
        assert with_record == 526

    def test_truth_covers_all_prefixes(self, world):
        assert set(world.truth.drop) == set(world.drop.unique_prefixes())

    def test_category_totals_match_config(self, world):
        counts = {c: 0 for c in Category}
        for truth in world.truth.drop.values():
            for category in truth.categories:
                counts[category] += 1
        cfg = world.config
        assert counts[Category.HIJACKED] == cfg.hijacked_prefixes
        assert counts[Category.SNOWSHOE] == cfg.snowshoe_prefixes
        assert counts[Category.KNOWN_SPAM] == cfg.known_spam_prefixes
        assert counts[Category.MALICIOUS_HOSTING] == (
            cfg.malicious_hosting_prefixes
        )
        assert counts[Category.UNALLOCATED] == cfg.total_unallocated
        assert counts[Category.NO_RECORD] == cfg.no_record_prefixes


class TestStructuralInvariants:
    def test_listing_dates_inside_window(self, world):
        for episode in world.drop.episodes():
            assert episode.added in world.window
            if episode.removed is not None:
                assert episode.removed in world.window

    def test_no_overlapping_drop_prefixes(self, world):
        prefixes = world.drop.unique_prefixes()
        for a, b in zip(prefixes, prefixes[1:]):
            # Sorted by address: only nested overlap possible; the
            # generator never lists nested prefixes separately, except
            # the case-study /22 vs its /24s (not separately listed).
            assert not a.overlaps(b), (a, b)

    def test_unallocated_prefixes_truly_unallocated(self, world):
        for prefix, truth in world.truth.drop.items():
            if truth.unallocated:
                assert world.resources.is_unallocated(prefix, truth.listed)
            elif not truth.incident:
                status = world.resources.status_of(prefix, truth.listed)
                assert status.is_allocated, prefix

    def test_filtering_peers_are_full_table(self, world):
        full = world.peers.full_table_peer_ids()
        assert world.truth.filtering_peer_ids <= full
        assert len(world.truth.filtering_peer_ids) == 3

    def test_withdrawn_truth_reflected_in_bgp(self, world):
        for prefix, truth in world.truth.drop.items():
            if truth.withdrawn_30d and not truth.incident:
                assert not world.bgp.is_announced(
                    prefix,
                    truth.listed + timedelta(days=30),
                    include_covering=False,
                ), prefix

    def test_hijacker_irr_objects_precede_bgp(self, world):
        for prefix, truth in world.truth.drop.items():
            if not truth.irr_hijacker_match:
                continue
            records = world.irr.exact(prefix)
            assert records
            first_bgp = world.bgp.first_announced(prefix)
            assert first_bgp is not None


class TestCaseStudyWorld:
    def test_case_prefix_listed(self, world):
        case = world.truth.case_study
        assert case is not None
        assert world.drop.is_listed(
            case.signed_prefix, world.window.end
        )

    def test_case_roa_authorizes_hijack(self, world):
        case = world.truth.case_study
        covering = world.roas.covering(
            case.signed_prefix, case.hijack_start
        )
        assert any(
            r.roa.asn == case.owner_asn for r in covering
        )

    def test_hijack_announced_with_owner_origin(self, world):
        case = world.truth.case_study
        origins = world.bgp.origins_on(
            case.signed_prefix, world.window.end
        )
        assert case.owner_asn in origins

    def test_six_siblings_three_on_drop(self, world):
        case = world.truth.case_study
        assert len(case.sibling_prefixes) == 6
        assert len(case.siblings_on_drop) == 3

    def test_operator_as0_prefix(self, world):
        prefix = world.truth.operator_as0_prefix
        assert prefix == IPv4Prefix.parse("45.65.112.0/22")
        covering = world.roas.covering(prefix, world.window.end)
        assert any(r.roa.is_as0 for r in covering)


class TestRirAs0World:
    def test_as0_roas_only_under_as0_tals(self, world):
        default = TalSet.default()
        for record in world.roas.records():
            if record.roa.trust_anchor.endswith("-AS0"):
                assert record.roa.is_as0
                assert not default.trusts(record.roa.trust_anchor)

    def test_filterable_bogons_exist(self, world):
        assert len(world.truth.as0_filterable) > 0


class TestDeterminism:
    def test_same_seed_same_world(self):
        a = build_world(ScenarioConfig.tiny(seed=7))
        b = build_world(ScenarioConfig.tiny(seed=7))
        assert sorted(map(str, a.drop.unique_prefixes())) == sorted(
            map(str, b.drop.unique_prefixes())
        )
        assert len(a.bgp) == len(b.bgp)
        assert len(a.roas) == len(b.roas)

    def test_different_seed_different_world(self):
        a = build_world(ScenarioConfig.tiny(seed=7))
        b = build_world(ScenarioConfig.tiny(seed=8))
        assert sorted(map(str, a.drop.unique_prefixes())) != sorted(
            map(str, b.drop.unique_prefixes())
        )
