"""DeltaSource: one world scan, every day's batch, no drift.

:func:`compute_delta` is now a one-shot wrapper over
:class:`DeltaSource`, so these tests pin the properties the wrapper
cannot: a *shared* source hands out the same batch for every day as a
fresh scan would (``batch()`` must not leak state between calls), the
union of all days' batches accounts for every archived episode edge,
and quiet days answer empty batches rather than errors.
"""

from datetime import date, timedelta

import pytest

from repro.ingest import DeltaBatch, DeltaSource, compute_delta
from repro.synth import ScenarioConfig, build_world


@pytest.fixture(scope="module")
def world():
    return build_world(ScenarioConfig.tiny(seed=11))


@pytest.fixture(scope="module")
def source(world):
    return DeltaSource(world)


def window_days(world):
    day = world.window.start
    while day <= world.window.end:
        yield day
        day += timedelta(days=1)


def edge_days(world):
    """Every day any archived episode starts or ends (pre-window too —
    the generator seeds announcements and ROAs before the window)."""
    days = set()
    for prefix in world.drop.unique_prefixes():
        for episode in world.drop.episodes_for(prefix):
            days.add(episode.added)
            days.add(episode.removed)
    for record in world.roas.records():
        days.add(record.created)
        days.add(record.removed)
    for interval in world.bgp.all_intervals():
        days.add(interval.start)
        days.add(interval.end)
        for p in interval.partial_observers:
            days.add(p.start)
            days.add(p.end)
    days.discard(None)
    return sorted(days)


class TestSharedSource:
    def test_every_day_matches_a_fresh_scan(self, world, source):
        for day in window_days(world):
            assert source.batch(day) == compute_delta(world, day)

    def test_repeated_batches_are_stable(self, world, source):
        day = world.window.start + timedelta(days=3)
        assert source.batch(day) == source.batch(day)

    def test_batches_round_trip_the_journal_payload(self, world, source):
        for day in window_days(world):
            batch = source.batch(day)
            assert DeltaBatch.from_dict(batch.to_dict()) == batch

    def test_quiet_day_is_empty_not_an_error(self, source):
        ancient = date(1970, 1, 1)
        batch = source.batch(ancient)
        assert batch.day == ancient
        assert len(batch) == 0


class TestCoverage:
    def test_batches_account_for_every_archive_edge(self, world, source):
        """Each lifecycle edge in the archives lands in exactly one batch."""
        drop_added = drop_removed = 0
        for prefix in world.drop.unique_prefixes():
            for episode in world.drop.episodes_for(prefix):
                drop_added += 1
                drop_removed += episode.removed is not None
        roa_added = roa_removed = 0
        for record in world.roas.records():
            roa_added += 1
            roa_removed += record.removed is not None
        started = sum(1 for _ in world.bgp.all_intervals())

        totals = [source.batch(day) for day in edge_days(world)]
        assert sum(len(b.drop_added) for b in totals) == drop_added
        assert sum(len(b.drop_removed) for b in totals) == drop_removed
        assert sum(len(b.roa_added) for b in totals) == roa_added
        assert sum(len(b.roa_removed) for b in totals) == roa_removed
        assert sum(len(b.route_started) for b in totals) == started
