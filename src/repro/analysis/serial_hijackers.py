"""Extension: profiling serial hijackers (after Testart et al. [52]).

§2.1 describes profiling "repeat offending hijacker ASes" from global
routing behaviour.  This module computes the behavioural features that
work showed separate serial hijackers from legitimate networks —
short-lived announcements, many distinct prefixes relative to stable
ones, and a high share of announced space that ends up blocklisted —
and scores every origin AS in the study's BGP data.

Ground truth validation in the tests: the generator's defunct hijacker
ASNs (the 13 origin ASes behind the §5 forged route objects) surface at
the top of the score ranking, while the high-volume legitimate ISPs do
not, even though they announce far more prefixes.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..synth.world import World
from .common import DropEntryView, load_entries

__all__ = ["OriginProfile", "SerialHijackerReport", "profile_origins"]

#: Announcements shorter than this are "short-lived" (Testart et al.
#: observed hijacker announcements lasting days-to-weeks, not months).
_SHORT_LIVED_DAYS = 60


@dataclass(frozen=True, slots=True)
class OriginProfile:
    """Behavioural features of one origin AS."""

    asn: int
    prefixes: int
    short_lived: int
    listed_on_drop: int
    median_duration_days: float

    @property
    def short_lived_share(self) -> float:
        """Fraction of this origin's announcements that were ephemeral."""
        return self.short_lived / self.prefixes if self.prefixes else 0.0

    @property
    def drop_share(self) -> float:
        """Fraction of announced prefixes that landed on DROP."""
        return self.listed_on_drop / self.prefixes if self.prefixes else 0.0

    @property
    def score(self) -> float:
        """Serial-hijacker likelihood score in [0, 1].

        A deliberately simple, interpretable combination: mostly the
        blocklist share, weighted up when the announcements are also
        ephemeral.  (Testart et al. train a classifier; with labels baked
        into the DROP join, a transparent score suffices here.)
        """
        return 0.7 * self.drop_share + 0.3 * self.short_lived_share


@dataclass(frozen=True, slots=True)
class SerialHijackerReport:
    """All origin profiles plus the flagged candidates."""

    profiles: tuple[OriginProfile, ...]
    #: Origins flagged as serial hijacker candidates, best score first.
    candidates: tuple[OriginProfile, ...]

    def profile(self, asn: int) -> OriginProfile | None:
        """The profile of one origin, if it announced anything."""
        for item in self.profiles:
            if item.asn == asn:
                return item
        return None


def profile_origins(
    world: World,
    entries: list[DropEntryView] | None = None,
    *,
    min_prefixes: int = 2,
    score_threshold: float = 0.5,
) -> SerialHijackerReport:
    """Score every origin AS in the BGP data.

    ``min_prefixes`` keeps one-off origins out of the candidate list (a
    single blocklisted prefix is not "serial"); ``score_threshold``
    gates the candidate set.
    """
    if entries is None:
        entries = load_entries(world)
    drop_prefixes = {e.prefix for e in entries}
    data_end = world.bgp.data_end or world.window.end

    stats: dict[int, dict] = {}
    for interval in world.bgp.all_intervals():
        record = stats.setdefault(
            interval.origin,
            {"prefixes": set(), "short": set(), "drop": set(),
             "durations": []},
        )
        record["prefixes"].add(interval.prefix)
        end = interval.end if interval.end is not None else data_end
        duration = (end - interval.start).days
        record["durations"].append(duration)
        if duration <= _SHORT_LIVED_DAYS and interval.end is not None:
            record["short"].add(interval.prefix)
        if interval.prefix in drop_prefixes:
            record["drop"].add(interval.prefix)

    profiles = []
    for asn, record in stats.items():
        durations = sorted(record["durations"])
        mid = len(durations) // 2
        median = (
            float(durations[mid])
            if len(durations) % 2
            else (durations[mid - 1] + durations[mid]) / 2.0
        )
        profiles.append(
            OriginProfile(
                asn=asn,
                prefixes=len(record["prefixes"]),
                short_lived=len(record["short"]),
                listed_on_drop=len(record["drop"]),
                median_duration_days=median,
            )
        )
    profiles.sort(key=lambda p: (-p.score, p.asn))
    candidates = tuple(
        p
        for p in profiles
        if p.prefixes >= min_prefixes and p.score >= score_threshold
    )
    return SerialHijackerReport(
        profiles=tuple(profiles), candidates=candidates
    )
