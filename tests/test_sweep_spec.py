"""Unit tests for sweep specs: validation, expansion, sampling."""

import json

import pytest

from repro.runtime import scenario_cache_key
from repro.sweep import SweepSpec, SweepSpecError


class TestValidation:
    def test_unknown_family_rejected(self):
        with pytest.raises(SweepSpecError):
            SweepSpec(families=("quantum-hijack",))

    def test_rate_out_of_range_rejected(self):
        with pytest.raises(SweepSpecError):
            SweepSpec(rov_rates=(0.0, 1.5))

    def test_duplicate_rates_rejected(self):
        with pytest.raises(SweepSpecError):
            SweepSpec(rov_rates=(0.5, 0.5))

    def test_empty_families_rejected(self):
        with pytest.raises(SweepSpecError):
            SweepSpec(families=())

    def test_unknown_scale_propagates_as_spec_error(self):
        with pytest.raises(Exception) as excinfo:
            SweepSpec(scale="galactic")
        assert getattr(excinfo.value, "code", "").endswith(".spec")

    def test_unknown_json_key_rejected(self):
        with pytest.raises(SweepSpecError):
            SweepSpec.from_dict({"surprise": 1})

    def test_invalid_json_rejected_with_stable_code(self):
        with pytest.raises(SweepSpecError) as excinfo:
            SweepSpec.from_json("{not json")
        assert excinfo.value.code == "sweep.spec"


class TestExpansion:
    def test_grid_is_the_axis_product(self):
        spec = SweepSpec(
            families=("prefix-hijack", "roa-downgrade"),
            rov_rates=(0.0, 0.5, 0.9),
            drop_rates=(0.0, 0.5),
        )
        cells = spec.cells()
        assert spec.grid_size == 12
        assert len(cells) == 12
        names = [name for name, _ in cells]
        assert names[0] == "prefix-hijack/rov0/drop0/rs0"
        assert len(set(names)) == 12

    def test_cells_carry_the_axis_rates(self):
        spec = SweepSpec(
            families=("subprefix-hijack",),
            rov_rates=(0.3,),
            drop_rates=(0.7,),
            route_server_rates=(0.1,),
            attack_count=2,
            listing_delay_days=3,
        )
        ((_name, scenario),) = spec.cells()
        by_kind = {d.kind: d for d in scenario.defenses}
        assert by_kind["rov"].rate == 0.3
        assert by_kind["drop-subscription"].rate == 0.7
        assert by_kind["drop-subscription"].listing_delay_days == 3
        assert by_kind["route-server"].rate == 0.1
        assert scenario.attacks[0].count == 2

    def test_cell_identity_is_stable_across_spec_names(self):
        a = SweepSpec(name="first", rov_rates=(0.5,), families=("prefix-hijack",))
        b = SweepSpec(name="second", rov_rates=(0.5,), families=("prefix-hijack",))
        key_a = scenario_cache_key(a.cells()[0][1])
        key_b = scenario_cache_key(b.cells()[0][1])
        assert key_a == key_b

    def test_sample_is_a_seeded_subset(self):
        spec = SweepSpec(
            rov_rates=(0.0, 0.25, 0.5, 0.75), sample=5, sample_seed=12
        )
        first = [name for name, _ in spec.cells()]
        second = [name for name, _ in spec.cells()]
        assert first == second
        assert len(first) == 5
        full = {
            name
            for name, _ in SweepSpec(
                rov_rates=(0.0, 0.25, 0.5, 0.75)
            ).cells()
        }
        assert set(first) <= full

    def test_json_roundtrip(self):
        spec = SweepSpec(
            name="rt",
            families=("maxlength-abuse", "as0-misconfig"),
            rov_rates=(0.0, 0.9),
            sample=3,
        )
        assert SweepSpec.from_json(spec.to_json()) == spec
        assert json.loads(spec.to_json())["name"] == "rt"
