"""Watch-event semantics: classification, sequencing, delivery.

The hijack classifier runs against the *pre-delta* index with
:class:`~repro.bgp.alarms.AlarmKind` semantics; these tests pick real
conflict candidates out of a synthetic world's index and assert each
alarm class (MOAS, sub-prefix, unauthorized origin) fires — and that
RFC 6811 *valid* announcements never do.  The delivery half covers the
:class:`EventLog` ring (monotonic seqs, ``since`` resume, blocking
reads, bounded retention) and the fire-and-forget webhook pusher.
"""

import http.server
import json
import threading
from datetime import timedelta

import pytest

from repro.ingest import (
    DeltaBatch,
    EventLog,
    RouteStart,
    WatchEvent,
    WebhookPusher,
    evaluate_events,
)
from repro.query.index import build_index
from repro.rpki.tal import TalSet
from repro.runtime import Instrumentation
from repro.synth import ScenarioConfig, build_world


@pytest.fixture(scope="module")
def world():
    return build_world(ScenarioConfig.tiny(seed=11))


@pytest.fixture(scope="module")
def index(world):
    return build_index(world)


@pytest.fixture(scope="module")
def day(world):
    return world.window.end


@pytest.fixture(scope="module")
def tals():
    return TalSet.default()


def _start(prefix, origin):
    return RouteStart(prefix=prefix, origin=origin, end=None, observers=())


def _no_route_conflict(index, prefix, origin, day):
    """True when no active route (exact or covering) has another origin."""
    for covering, bucket in index.routes.lookup_covering(prefix):
        for entry in bucket:
            if entry.active_on(day) and entry.origin != origin:
                return False
    return True


class TestHijackClassification:
    def test_moas_second_origin_on_exact_prefix(self, world, index, day):
        for prefix in index.routes:
            active = [
                e for e in index.routes.get(prefix) if e.active_on(day)
            ]
            if active:
                incumbent = active[0].origin
                break
        else:
            raise AssertionError("no active route in the world")
        batch = DeltaBatch(
            day=day, route_started=(_start(prefix, incumbent + 1),)
        )
        events = evaluate_events(index, batch)
        assert [e.kind for e in events] == ["hijack"]
        assert events[0].alarm == "moas"
        assert events[0].prefix == prefix
        assert events[0].origin == incumbent + 1

    def test_subprefix_more_specific_of_active_route(self, index, day):
        for prefix in index.routes:
            if prefix.length >= 24:
                continue
            active = [
                e for e in index.routes.get(prefix) if e.active_on(day)
            ]
            if not active:
                continue
            incumbent = active[0].origin
            for sub in prefix.subnets(prefix.length + 1):
                exact = index.routes.get(sub) or ()
                if not any(e.active_on(day) for e in exact):
                    batch = DeltaBatch(
                        day=day,
                        route_started=(_start(sub, incumbent + 1),),
                    )
                    events = evaluate_events(index, batch)
                    assert [e.alarm for e in events] == ["subprefix"]
                    assert str(prefix) in events[0].detail
                    return
        raise AssertionError("no sub-prefix candidate in the world")

    def test_origin_unauthorized_under_covering_roa(self, index, day, tals):
        for prefix in index.roa:
            entries = [
                e
                for e in index.roa.get(prefix)
                if e.active_on(day) and tals.trusts(e.trust_anchor)
            ]
            if not entries:
                continue
            rogue = max(e.asn for e in entries) + 1
            if not _no_route_conflict(index, prefix, rogue, day):
                continue
            authorized = any(
                e.active_on(day)
                and tals.trusts(e.trust_anchor)
                and e.roa(p).authorizes(prefix, rogue)
                for p, bucket in index.roa.lookup_covering(prefix)
                for e in bucket
            )
            if authorized:
                continue
            batch = DeltaBatch(
                day=day, route_started=(_start(prefix, rogue),)
            )
            events = evaluate_events(index, batch)
            assert [e.alarm for e in events] == ["origin"]
            assert events[0].origin == rogue
            return
        raise AssertionError("no unauthorized-origin candidate in the world")

    def test_rfc6811_valid_announcement_is_silent(self, index, day, tals):
        for prefix in index.roa:
            entries = [
                e
                for e in index.roa.get(prefix)
                if e.active_on(day) and tals.trusts(e.trust_anchor)
            ]
            for entry in entries:
                if not entry.roa(prefix).authorizes(prefix, entry.asn):
                    continue
                if not _no_route_conflict(index, prefix, entry.asn, day):
                    continue
                batch = DeltaBatch(
                    day=day, route_started=(_start(prefix, entry.asn),)
                )
                assert evaluate_events(index, batch) == []
                return
        raise AssertionError("no RFC 6811 valid candidate in the world")

    def test_uncovered_unconflicted_announcement_is_silent(self, index, day):
        # A prefix no store has seen: no routes, no ROAs, no event.
        from repro.net.prefix import IPv4Prefix

        quiet = IPv4Prefix.parse("203.0.113.0/24")
        assert index.routes.get(quiet) is None
        batch = DeltaBatch(day=day, route_started=(_start(quiet, 64500),))
        assert evaluate_events(index, batch) == []


class TestListingAndExpiryEvents:
    def test_drop_addition_becomes_listed_event(self, index, day, world):
        prefix = next(iter(world.drop.unique_prefixes()))
        batch = DeltaBatch(day=day, drop_added=((prefix, "SBL99999"),))
        events = evaluate_events(index, batch)
        assert [e.kind for e in events] == ["listed"]
        assert events[0].sbl_id == "SBL99999"
        assert events[0].to_dict()["prefix"] == str(prefix)

    def test_roa_removal_becomes_expiry_event(self, index, day, world):
        record = next(iter(world.roas.records()))
        roa = record.roa
        batch = DeltaBatch(
            day=day,
            roa_removed=(
                (
                    roa.prefix,
                    roa.asn,
                    roa.max_length,
                    roa.trust_anchor,
                    record.created,
                ),
            ),
        )
        events = evaluate_events(index, batch)
        assert [e.kind for e in events] == ["roa-expired"]
        assert events[0].origin == roa.asn
        assert roa.trust_anchor in events[0].detail


class TestEventLog:
    def _event(self, n):
        from repro.net.prefix import IPv4Prefix
        from datetime import date

        return WatchEvent(
            seq=0,
            kind="listed",
            day=date(2020, 1, 1) + timedelta(days=n),
            prefix=IPv4Prefix.parse("198.51.100.0/24"),
            detail=f"event {n}",
        )

    def test_publish_assigns_monotonic_seqs(self):
        log = EventLog()
        first = log.publish([self._event(0), self._event(1)])
        second = log.publish([self._event(2)])
        assert [e.seq for e in first + second] == [1, 2, 3]
        assert log.last_seq == 3
        assert log.publish([]) == []
        assert log.last_seq == 3

    def test_since_resumes_mid_stream(self):
        log = EventLog()
        log.publish([self._event(n) for n in range(5)])
        assert [e.seq for e in log.since(0)] == [1, 2, 3, 4, 5]
        assert [e.seq for e in log.since(3)] == [4, 5]
        assert log.since(5) == []

    def test_bounded_ring_drops_oldest(self):
        log = EventLog(maxlen=3)
        log.publish([self._event(n) for n in range(5)])
        assert [e.seq for e in log.since(0)] == [3, 4, 5]
        assert log.last_seq == 5

    def test_wait_since_wakes_on_publish(self):
        log = EventLog()
        got = []

        def waiter():
            got.extend(log.wait_since(0, timeout=10.0))

        thread = threading.Thread(target=waiter)
        thread.start()
        log.publish([self._event(0)])
        thread.join(timeout=10)
        assert not thread.is_alive()
        assert [e.seq for e in got] == [1]

    def test_wait_since_times_out_empty(self):
        log = EventLog()
        assert log.wait_since(0, timeout=0.05) == []


class TestWebhookPusher:
    def test_delivers_enveloped_events(self):
        received = []

        class Receiver(http.server.BaseHTTPRequestHandler):
            def do_POST(self):
                length = int(self.headers["Content-Length"])
                received.append(json.loads(self.rfile.read(length)))
                self.send_response(204)
                self.end_headers()

            def log_message(self, *args):
                pass

        httpd = http.server.HTTPServer(("127.0.0.1", 0), Receiver)
        thread = threading.Thread(target=httpd.serve_forever, daemon=True)
        thread.start()
        try:
            host, port = httpd.server_address
            instr = Instrumentation()
            pusher = WebhookPusher(
                f"http://{host}:{port}/hook", instrumentation=instr
            )
            event = TestEventLog()._event(0)
            push = pusher.push([event])
            push.join(timeout=10)
            assert not push.is_alive()
            assert pusher.push([]) is None
        finally:
            httpd.shutdown()
            thread.join(timeout=10)
        assert received == [
            {"api": 1, "data": {"events": [event.to_dict()]}}
        ]
        assert instr.counters["ingest_webhook_pushes"] == 1

    def test_dead_receiver_counts_error_and_survives(self):
        instr = Instrumentation()
        # A port nothing listens on: delivery fails, the push thread
        # still terminates, and only the error counter moves.
        pusher = WebhookPusher(
            "http://127.0.0.1:9/hook", instrumentation=instr, timeout=0.5
        )
        push = pusher.push([TestEventLog()._event(0)])
        push.join(timeout=10)
        assert not push.is_alive()
        assert instr.counters["ingest_webhook_errors"] == 1
        assert "ingest_webhook_pushes" not in instr.counters
