"""Ablation: interval RIB vs materialized daily snapshot tables.

The BGP substrate stores route state as intervals and derives daily
views; the alternative — materializing a per-day announced-prefix table —
is what naive pipelines build from daily RIB dumps.  This bench runs the
Figure 2 inner query (is the prefix announced at listing-relative
offsets?) against both representations; the materialization cost itself
is timed separately.
"""

from datetime import timedelta


def _samples(world, entries):
    offsets = (-1, 2, 7, 30)
    return [
        (e.prefix, e.listed + timedelta(days=o))
        for e in entries
        for o in offsets
    ]


def bench_interval_rib_queries(benchmark, world, entries):
    samples = _samples(world, entries)

    def run():
        return sum(
            1
            for prefix, day in samples
            if world.bgp.is_announced(prefix, day, include_covering=False)
        )

    announced = benchmark(run)
    assert announced > 0


def bench_materialized_daily_tables(benchmark, world, entries):
    samples = _samples(world, entries)

    def run():
        # Build a day -> set(prefix) table for the sampled days, the way a
        # per-day RIB-dump pipeline would, then answer from it.
        days = {day for _, day in samples}
        tables = {
            day: set(world.bgp.announced_prefixes_on(day)) for day in days
        }
        return sum(
            1 for prefix, day in samples if prefix in tables[day]
        )

    announced = benchmark(run)
    assert announced > 0


def bench_rib_representations_agree(world, entries):
    """Non-timed sanity check: both representations answer identically."""
    samples = _samples(world, entries)[:200]
    for prefix, day in samples:
        interval_answer = world.bgp.is_announced(
            prefix, day, include_covering=False
        )
        daily_answer = prefix in set(world.bgp.announced_prefixes_on(day))
        assert interval_answer == daily_answer
