"""Figure 2: routing visibility around listing + the filtering peers."""

from repro.analysis import analyze_visibility, detect_drop_filtering
from repro.drop.categories import Category


def bench_fig2_visibility_cdf(benchmark, world, entries):
    result = benchmark(analyze_visibility, world, entries)
    # Shape: ~1/5 of prefixes withdrawn at +30d; hijacked and unallocated
    # categories withdraw at several times the background rate.
    assert 0.1 < result.withdrawal_rate < 0.3
    hijacked = result.category_rate(Category.HIJACKED)
    unallocated = result.category_rate(Category.UNALLOCATED)
    hosting = result.category_rate(Category.MALICIOUS_HOSTING)
    assert hijacked > unallocated > hosting
    assert hijacked > 3 * result.withdrawal_rate


def bench_fig2_peer_filtering(benchmark, world, entries):
    result = benchmark(detect_drop_filtering, world, entries)
    # Shape: exactly three full-table peers filter the DROP list; every
    # other peer observes nearly everything.
    assert len(result.suspects) == 3
    normal = [
        r for r in result.rates if r.peer_id not in result.suspect_peer_ids
    ]
    assert min(r.rate for r in normal) > 0.9
    assert max(s.rate for s in result.suspects) < 0.5
