"""The ingest identity rule: incremental == rebuilt-from-scratch.

Applying K sequential daily deltas to the as-of-day-0 state must land
on exactly the outputs of one cold as-of build of the final day —
query responses and report payloads alike, under multiple seeds.  This
is the contract that makes the streaming path trustworthy: every
answer the live daemon gives is an answer the batch pipeline would
have given.
"""

import json
from datetime import timedelta

import pytest

from repro.analysis.substrate import AnalysisSubstrate
from repro.ingest import (
    Ingestor,
    apply_delta,
    build_index_as_of,
    compute_delta,
    compute_roa_status_as_of,
)
from repro.query.engine import QueryEngine
from repro.query.index import build_index
from repro.synth import ScenarioConfig, build_world

SEEDS = (7, 2022)

#: Days of daily ingest to replay in the golden runs.
K = 45


@pytest.fixture(scope="module", params=SEEDS)
def world(request):
    return build_world(ScenarioConfig.tiny(seed=request.param))


def probe_days(world, start, end):
    """A handful of interesting days: boundaries plus a mid-range spread."""
    days = {start, end, start + (end - start) / 2}
    days.add(world.window.end)
    return sorted(days)


def probe_prefixes(world):
    """Every prefix any store knows about (tiny worlds keep this small)."""
    prefixes = set(world.drop.unique_prefixes())
    prefixes.update(r.roa.prefix for r in world.roas.records())
    prefixes.update(i.prefix for i in world.bgp.all_intervals())
    prefixes.update(r.route.prefix for r in world.irr.records())
    return sorted(prefixes)


def engine_outputs(engine, prefixes, days):
    """Every probe lookup as its canonical wire bytes."""
    return [
        json.dumps(
            engine.lookup(prefix, on=day).to_dict(), sort_keys=True
        )
        for prefix in prefixes
        for day in days
    ]


def status_payload(result):
    """A RoaStatusResult as comparable canonical bytes."""
    return json.dumps(
        {
            "points": [
                [
                    p.day.isoformat(),
                    p.signed,
                    p.signed_routed,
                    p.signed_unrouted,
                    p.allocated_unrouted_unsigned,
                ]
                for p in result.points
            ],
            "by_holder": result.unrouted_signed_by_holder,
            "by_rir": result.unrouted_unsigned_by_rir,
        },
        sort_keys=True,
    )


class TestIncrementalIdentity:
    def test_k_daily_deltas_equal_cold_build(self, world):
        """The tentpole golden: K applied days == one cold as-of build."""
        start = world.window.start
        final = start + timedelta(days=K)
        index = build_index_as_of(world, start)
        substrate = AnalysisSubstrate(world)
        substrate._index = index
        substrate._roa_status = compute_roa_status_as_of(world, start)
        for offset in range(1, K + 1):
            day = start + timedelta(days=offset)
            index = apply_delta(
                index, substrate, compute_delta(world, day)
            )

        cold_index = build_index_as_of(world, final)
        prefixes = probe_prefixes(world)
        days = probe_days(world, start, final)
        assert engine_outputs(
            QueryEngine(index), prefixes, days
        ) == engine_outputs(QueryEngine(cold_index), prefixes, days)
        assert status_payload(substrate._roa_status) == status_payload(
            compute_roa_status_as_of(world, final)
        )

    def test_full_window_replay_equals_batch_build(self, world):
        """Ingesting every day of the window lands on the batch index."""
        start = world.window.start
        end = world.window.end
        index = build_index_as_of(world, start)
        substrate = AnalysisSubstrate(world)
        substrate._index = index
        substrate._roa_status = compute_roa_status_as_of(world, start)
        day = start
        while day < end:
            day += timedelta(days=1)
            index = apply_delta(index, substrate, compute_delta(world, day))

        batch_index = build_index(world)
        prefixes = probe_prefixes(world)
        days = probe_days(world, start, end)
        assert engine_outputs(
            QueryEngine(index), prefixes, days
        ) == engine_outputs(QueryEngine(batch_index), prefixes, days)
        # The fully-replayed substrate equals the full batch report.
        from repro.analysis.substrate import compute_roa_status

        assert status_payload(substrate._roa_status) == status_payload(
            compute_roa_status(world)
        )

    def test_as_of_window_end_equals_full_build(self, world):
        """Nothing clamps on the final day: as-of == batch build."""
        cold = build_index_as_of(world, world.window.end)
        full = build_index(world)
        prefixes = probe_prefixes(world)
        days = probe_days(world, world.window.start, world.window.end)
        assert engine_outputs(
            QueryEngine(cold), prefixes, days
        ) == engine_outputs(QueryEngine(full), prefixes, days)

    def test_old_index_untouched_by_apply(self, world):
        """Copy-on-write: the pre-apply state keeps serving old answers."""
        start = world.window.start
        index = build_index_as_of(world, start)
        before_engine = QueryEngine(index)
        prefixes = probe_prefixes(world)
        days = probe_days(world, start, start + timedelta(days=1))
        before = engine_outputs(before_engine, prefixes, days)
        day = start
        current = index
        for _ in range(7):
            day += timedelta(days=1)
            current = apply_delta(current, None, compute_delta(world, day))
        assert engine_outputs(before_engine, prefixes, days) == before


class TestIngestorService:
    def test_ingestor_advance_matches_cold_build(self, world, tmp_path):
        ingestor = Ingestor(world, state_dir=tmp_path / "state")
        final = world.window.start + timedelta(days=10)
        results = ingestor.advance(to_day=final)
        assert [r.day for r in results] == [
            world.window.start + timedelta(days=n) for n in range(1, 11)
        ]
        assert ingestor.as_of == final
        cold = QueryEngine(build_index_as_of(world, final))
        prefixes = probe_prefixes(world)
        days = probe_days(world, world.window.start, final)
        assert engine_outputs(
            ingestor.engine, prefixes, days
        ) == engine_outputs(cold, prefixes, days)

    def test_journal_replay_restores_state(self, world, tmp_path):
        state = tmp_path / "state"
        first = Ingestor(world, state_dir=state)
        final = world.window.start + timedelta(days=8)
        first.advance(to_day=final)

        resumed = Ingestor(world, state_dir=state)
        assert resumed.as_of == final
        assert resumed.days_applied == 8
        prefixes = probe_prefixes(world)
        days = probe_days(world, world.window.start, final)
        assert engine_outputs(
            resumed.engine, prefixes, days
        ) == engine_outputs(first.engine, prefixes, days)
        assert status_payload(resumed.substrate._roa_status) == (
            status_payload(first.substrate._roa_status)
        )
