"""Unit tests for repro.rpki.roa, tal, and validation."""

from datetime import date

import pytest

from repro.net.prefix import IPv4Prefix
from repro.rpki.roa import Roa, RoaRecord
from repro.rpki.tal import APNIC_AS0_TAL, LACNIC_AS0_TAL, TalSet
from repro.rpki.validation import RouteValidity, validate_route

P22 = IPv4Prefix.parse("132.255.0.0/22")
P24 = IPv4Prefix.parse("132.255.0.0/24")
OTHER = IPv4Prefix.parse("10.0.0.0/24")


class TestRoa:
    def test_effective_max_length_defaults_to_prefix(self):
        assert Roa(P22, 263692).effective_max_length == 22

    def test_max_length_validation(self):
        with pytest.raises(ValueError):
            Roa(P22, 263692, max_length=20)
        with pytest.raises(ValueError):
            Roa(P22, 263692, max_length=33)

    def test_negative_asn_rejected(self):
        with pytest.raises(ValueError):
            Roa(P22, -1)

    def test_is_as0(self):
        assert Roa(P22, 0).is_as0
        assert not Roa(P22, 263692).is_as0

    def test_authorizes_exact(self):
        roa = Roa(P22, 263692)
        assert roa.authorizes(P22, 263692)
        assert not roa.authorizes(P22, 50509)

    def test_authorizes_subprefix_only_with_max_length(self):
        tight = Roa(P22, 263692)
        loose = Roa(P22, 263692, max_length=24)
        assert not tight.authorizes(P24, 263692)
        assert loose.authorizes(P24, 263692)

    def test_as0_authorizes_nothing(self):
        roa = Roa(P22, 0, max_length=32)
        assert not roa.authorizes(P22, 0)
        assert not roa.authorizes(P24, 263692)

    def test_covers(self):
        assert Roa(P22, 263692).covers(P24)
        assert not Roa(P22, 263692).covers(OTHER)

    def test_forged_subprefix_vulnerable(self):
        assert Roa(P22, 263692, max_length=24).forged_subprefix_vulnerable()
        assert not Roa(P22, 263692).forged_subprefix_vulnerable()
        # AS0 with maxLength is not a forged-origin target.
        assert not Roa(P22, 0, max_length=24).forged_subprefix_vulnerable()

    def test_str(self):
        assert "AS263692" in str(Roa(P22, 263692))


class TestRoaRecord:
    def test_active_on(self):
        record = RoaRecord(
            Roa(P22, 263692), date(2020, 1, 1), date(2020, 6, 1)
        )
        assert record.active_on(date(2020, 1, 1))
        assert record.active_on(date(2020, 5, 31))
        assert not record.active_on(date(2020, 6, 1))

    def test_removed_before_created_rejected(self):
        with pytest.raises(ValueError):
            RoaRecord(Roa(P22, 263692), date(2020, 6, 1), date(2020, 1, 1))


class TestTalSet:
    def test_default_excludes_as0_tals(self):
        tals = TalSet.default()
        assert tals.trusts("RIPE")
        assert tals.trusts("ARIN")
        assert not tals.trusts(APNIC_AS0_TAL)
        assert not tals.trusts(LACNIC_AS0_TAL)

    def test_with_as0(self):
        tals = TalSet.with_as0()
        assert APNIC_AS0_TAL in tals
        assert "RIPE" in tals

    def test_of(self):
        tals = TalSet.of(["RIPE"])
        assert tals.trusts("RIPE")
        assert not tals.trusts("ARIN")


class TestValidateRoute:
    def test_not_found_without_covering_roa(self):
        assert validate_route(OTHER, 64500, [Roa(P22, 263692)]) is (
            RouteValidity.NOT_FOUND
        )

    def test_valid_with_matching_roa(self):
        assert validate_route(P22, 263692, [Roa(P22, 263692)]) is (
            RouteValidity.VALID
        )

    def test_invalid_wrong_origin(self):
        assert validate_route(P22, 50509, [Roa(P22, 263692)]) is (
            RouteValidity.INVALID
        )

    def test_invalid_too_specific(self):
        assert validate_route(P24, 263692, [Roa(P22, 263692)]) is (
            RouteValidity.INVALID
        )

    def test_valid_wins_over_invalid(self):
        roas = [Roa(P22, 99999), Roa(P22, 263692)]
        assert validate_route(P22, 263692, roas) is RouteValidity.VALID

    def test_as0_roa_makes_invalid(self):
        assert validate_route(P22, 263692, [Roa(P22, 0, max_length=32)]) is (
            RouteValidity.INVALID
        )

    def test_untrusted_tal_ignored(self):
        roa = Roa(P22, 0, max_length=32, trust_anchor=APNIC_AS0_TAL)
        # Default validator does not see the AS0 TAL: NOT_FOUND.
        assert validate_route(P22, 64500, [roa]) is RouteValidity.NOT_FOUND
        # Opt-in configuration does: INVALID.
        assert validate_route(
            P22, 64500, [roa], TalSet.with_as0()
        ) is RouteValidity.INVALID

    def test_rpki_valid_hijack_scenario(self):
        """The 132.255.0.0/22 case: hijacker forges the ROA ASN as origin
        and the announcement validates — RPKI cannot help (§6.1)."""
        roa = Roa(P22, 263692, trust_anchor="LACNIC")
        # Hijacker announces with origin 263692 behind AS50509 transit:
        # origin validation sees only the origin, so the route is VALID.
        assert validate_route(P22, 263692, [roa]) is RouteValidity.VALID
