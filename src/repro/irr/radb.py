"""A journaled RADb-like IRR database.

Merit publishes daily flat-file snapshots of RADb; the study reconstructs
when route objects were created and removed by diffing the archive.  We
store the journal directly — each route object carries its creation day and
optional deletion day — and derive any day's snapshot from it.  Both
directions round-trip: :meth:`IrrDatabase.snapshot_text` emits a day's flat
file and :meth:`IrrDatabase.from_snapshots` rebuilds the journal by diffing,
exactly as the measurement pipeline would.

RADb performs *no authorization check* that the registrant controls the
origin ASN or the prefix (§2.2) — the database therefore accepts any
record, which is precisely the weakness the paper's attackers exploit.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from datetime import date, timedelta
from pathlib import Path
from typing import Iterable, Iterator

from ..net.prefix import IPv4Prefix
from ..net.radix import RadixTree
from .rpsl import RouteObject, emit_objects, parse_objects

__all__ = ["IrrDatabase", "RouteObjectRecord"]


@dataclass(frozen=True, slots=True)
class RouteObjectRecord:
    """A route object plus its registration lifetime."""

    route: RouteObject
    created: date
    deleted: date | None = None  # first day the object was gone

    def __post_init__(self) -> None:
        if self.deleted is not None and self.deleted <= self.created:
            raise ValueError(
                f"route object for {self.route.prefix} deleted "
                f"{self.deleted} not after created {self.created}"
            )

    def active_on(self, day: date) -> bool:
        """True if the object existed in the IRR on ``day``."""
        return self.created <= day and (
            self.deleted is None or day < self.deleted
        )


class IrrDatabase:
    """All route-object records, indexed by prefix in a radix trie."""

    def __init__(self) -> None:
        self._tree: RadixTree[list[RouteObjectRecord]] = RadixTree()
        self._count = 0

    def add(self, record: RouteObjectRecord) -> None:
        """Register one route-object record (no authorization checks)."""
        bucket = self._tree.get(record.route.prefix)
        if bucket is None:
            self._tree.insert(record.route.prefix, [record])
        else:
            bucket.append(record)
        self._count += 1

    def extend(self, records: Iterable[RouteObjectRecord]) -> None:
        """Register many records."""
        for record in records:
            self.add(record)

    def __len__(self) -> int:
        return self._count

    # -- retrieval -----------------------------------------------------------

    def records(self) -> Iterator[RouteObjectRecord]:
        """Every record, grouped by prefix in address order."""
        for _, bucket in self._tree.items():
            yield from bucket

    def exact(self, prefix: IPv4Prefix) -> list[RouteObjectRecord]:
        """Records registered for exactly this prefix."""
        bucket = self._tree.get(prefix)
        return sorted(bucket, key=lambda r: r.created) if bucket else []

    def covering(self, prefix: IPv4Prefix) -> list[RouteObjectRecord]:
        """Records for this prefix or any less-specific covering it."""
        found: list[RouteObjectRecord] = []
        for _, bucket in self._tree.lookup_covering(prefix):
            found.extend(bucket)
        return sorted(found, key=lambda r: (r.created, r.route.prefix))

    def covered(self, prefix: IPv4Prefix) -> list[RouteObjectRecord]:
        """Records for this prefix or any more-specific inside it."""
        found: list[RouteObjectRecord] = []
        for _, bucket in self._tree.lookup_covered(prefix):
            found.extend(bucket)
        return sorted(found, key=lambda r: (r.created, r.route.prefix))

    def exact_or_more_specific(
        self, prefix: IPv4Prefix, *, active_in: tuple[date, date] | None = None
    ) -> list[RouteObjectRecord]:
        """§5's query: route objects matching the prefix exactly or as a
        more-specific, optionally restricted to objects active at some
        point in the inclusive ``active_in`` window."""
        found = self.covered(prefix)
        if active_in is None:
            return found
        start, end = active_in
        return [
            r
            for r in found
            if any(
                r.active_on(start + timedelta(days=offset))
                for offset in range((end - start).days + 1)
            )
        ]

    def active_on(self, day: date) -> list[RouteObjectRecord]:
        """All records present in the database on ``day``."""
        return [r for r in self.records() if r.active_on(day)]

    def org_ids(self) -> dict[str, int]:
        """ORG-ID → number of route objects registered under it."""
        counts: dict[str, int] = {}
        for record in self.records():
            if record.route.org_id is not None:
                counts[record.route.org_id] = (
                    counts.get(record.route.org_id, 0) + 1
                )
        return counts

    # -- journal persistence ---------------------------------------------------

    def write_journal(self, path: Path) -> int:
        """Write the journal as JSONL; returns the record count."""
        with open(path, "w") as out:
            for record in self.records():
                json.dump(
                    {
                        "prefix": str(record.route.prefix),
                        "origin": record.route.origin,
                        "maintainer": record.route.maintainer,
                        "org_id": record.route.org_id,
                        "descr": record.route.descr,
                        "source": record.route.source,
                        "created": record.created.isoformat(),
                        "deleted": (
                            None
                            if record.deleted is None
                            else record.deleted.isoformat()
                        ),
                    },
                    out,
                    separators=(",", ":"),
                )
                out.write("\n")
        return len(self)

    @classmethod
    def read_journal(cls, path: Path) -> "IrrDatabase":
        """Read a journal written by :meth:`write_journal`."""
        db = cls()
        with open(path) as source:
            for line in source:
                line = line.strip()
                if not line:
                    continue
                raw = json.loads(line)
                db.add(
                    RouteObjectRecord(
                        route=RouteObject(
                            prefix=IPv4Prefix.parse(raw["prefix"]),
                            origin=raw["origin"],
                            maintainer=raw["maintainer"],
                            org_id=raw["org_id"],
                            descr=raw["descr"],
                            source=raw["source"],
                        ),
                        created=date.fromisoformat(raw["created"]),
                        deleted=(
                            None
                            if raw["deleted"] is None
                            else date.fromisoformat(raw["deleted"])
                        ),
                    )
                )
        return db

    # -- snapshot (de)serialization ---------------------------------------------

    def snapshot_text(self, day: date) -> str:
        """One day's database contents as a flat RPSL file."""
        objects = [r.route.to_rpsl() for r in self.active_on(day)]
        if not objects:
            return "% empty snapshot\n"
        return emit_objects(objects)

    @classmethod
    def from_snapshots(
        cls, snapshots: Iterable[tuple[date, str]]
    ) -> "IrrDatabase":
        """Rebuild the journal by diffing day-ordered RPSL snapshots.

        Identity is (prefix, origin, maintainer): the paper treats a route
        object re-registered with a different origin as a new object.
        """
        db = cls()
        open_since: dict[tuple, tuple[date, RouteObject]] = {}
        for day, text in sorted(snapshots, key=lambda s: s[0]):
            present: set[tuple] = set()
            for obj in parse_objects(text):
                if obj.object_class != "route":
                    continue
                route = RouteObject.from_rpsl(obj)
                key = (route.prefix, route.origin, route.maintainer)
                present.add(key)
                if key not in open_since:
                    open_since[key] = (day, route)
            for key in list(open_since):
                if key not in present:
                    created, route = open_since.pop(key)
                    db.add(
                        RouteObjectRecord(
                            route=route, created=created, deleted=day
                        )
                    )
        for created, route in open_since.values():
            db.add(RouteObjectRecord(route=route, created=created))
        return db
