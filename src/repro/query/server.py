"""The threaded serving daemon: one transport over the shared core.

A stdlib-only (``http.server``) daemon exposing the
:class:`~repro.query.engine.QueryEngine` for interactive traffic:

* ``GET /v1/status?prefix=P&on=YYYY-MM-DD`` — one unified
  :class:`~repro.query.engine.PrefixStatus` as JSON;
* ``POST /v1/batch`` — ``{"queries": [{"prefix": P, "on": D?}, ...]}``
  answered in order as ``{"results": [...]}``;
* ``GET /healthz`` — liveness plus index sizes and the request counters;
* ``GET /metrics`` — the run's :class:`~repro.obs.MetricsRegistry` in
  Prometheus text format (0.0.4).

All request handling — parsing, validation, the JSON bodies, the error
payload shape, the per-endpoint metrics — lives in
:class:`~repro.query.http.ServerCore`, shared byte-for-byte with the
asyncio tier (:mod:`repro.query.aserver`); this module only adapts the
stdlib handler API onto it.  The engine's index is immutable, so one
core serves every handler thread without locks, and ``/healthz`` /
``/metrics`` never touch the engine: they read the startup snapshot and
the registry.  SIGTERM/SIGINT drain gracefully: both endpoints flip to
503 so load balancers stop sending traffic, the accept loop stops,
in-flight requests finish, then the socket closes.
"""

from __future__ import annotations

import signal
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from .engine import QueryEngine
from .http import (
    BAD_REQUEST_BODY,
    MAX_BATCH_BYTES,
    Response,
    ServerCore,
    parse_content_length,
)

__all__ = ["QueryServer"]

#: Re-exported for backward compatibility (the limit now lives in
#: :mod:`repro.query.http`, next to the handler that enforces it).
_MAX_BATCH_BYTES = MAX_BATCH_BYTES


class _Handler(BaseHTTPRequestHandler):
    """One request; the shared core hangs off the server object."""

    server: "QueryServer"  # type: ignore[assignment]
    protocol_version = "HTTP/1.1"

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if self.server.core.verbose:  # pragma: no cover - log formatting
            super().log_message(format, *args)

    def _dispatch(self, method: str) -> None:
        try:
            length = parse_content_length(self.headers.get("Content-Length"))
        except ValueError:
            # A malformed/negative Content-Length previously raised out
            # of the handler thread (connection reset, no response);
            # both daemons now answer the same stable-coded 400.
            self.server.core.instrumentation.incr("serve_client_errors")
            response = Response(400, "application/json", BAD_REQUEST_BODY)
            self.close_connection = True
        else:
            body = None
            if method == "POST" and 0 < length <= MAX_BATCH_BYTES:
                body = self.rfile.read(length)
            response = self.server.core.handle(method, self.path, body, length)
        self.send_response(response.status)
        self.send_header("Content-Type", response.content_type)
        self.send_header("Content-Length", str(len(response.body)))
        self.end_headers()
        self.wfile.write(response.body)

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("POST")


class QueryServer(ThreadingHTTPServer):
    """The daemon: a threading HTTP server wrapping one shared core.

    ``port=0`` binds an ephemeral port (tests); :attr:`server_address`
    holds the bound address either way.  ``block_on_close`` (the
    stdlib default) makes :meth:`shutdown` + ``server_close`` a
    graceful drain: no new connections, in-flight requests finish.
    """

    daemon_threads = False
    block_on_close = True

    def __init__(
        self,
        engine: QueryEngine,
        host: str = "127.0.0.1",
        port: int = 8765,
        *,
        verbose: bool = False,
        ingestor=None,
    ) -> None:
        self.core = ServerCore(engine, verbose=verbose, ingestor=ingestor)
        self.instrumentation = self.core.instrumentation
        self.registry = self.core.registry
        self.verbose = verbose
        # Test-visible aliases onto the core's state (the drain tests
        # flip these directly to open the drain window without the
        # shutdown).
        self._draining = self.core.draining
        self._draining_gauge = self.core.draining_gauge
        self.request_seconds = self.core.request_seconds
        super().__init__((host, port), _Handler)

    @property
    def engine(self) -> QueryEngine:
        return self.core.engine

    @engine.setter
    def engine(self, engine: QueryEngine) -> None:
        # Plain swap, snapshot untouched: /healthz and /metrics answer
        # from the startup snapshot whatever this is set to (pinned by
        # the poisoned-engine test).
        self.core.set_engine(engine, refresh_snapshot=False)

    @property
    def health_snapshot(self) -> dict:
        return self.core.health_snapshot

    @property
    def draining(self) -> bool:
        """True once a drain signal was received (health flips to 503)."""
        return self.core.draining.is_set()

    def install_signal_handlers(self) -> None:
        """Drain on SIGTERM/SIGINT (a no-op off the main thread)."""
        if threading.current_thread() is not threading.main_thread():
            return
        for signum in (signal.SIGTERM, signal.SIGINT):
            signal.signal(signum, self._handle_signal)

    def _handle_signal(self, signum, frame) -> None:
        # shutdown() blocks until serve_forever exits, so it must not be
        # called from the thread running serve_forever (the main thread,
        # where signal handlers execute) — hand it to a helper thread.
        if self.core.start_drain():
            threading.Thread(target=self.shutdown, daemon=True).start()

    def serve_until_shutdown(self) -> None:
        """Serve until :meth:`shutdown` (or a drain signal), then close."""
        try:
            self.serve_forever()
        finally:
            self.server_close()
