"""Unit tests for the stage-instrumentation collector."""

import json

from repro.runtime import Instrumentation, world_sizes
from repro.synth import ScenarioConfig, build_world


class TestInstrumentation:
    def test_stage_records_wall_time(self):
        instr = Instrumentation()
        with instr.stage("alpha"):
            pass
        with instr.stage("beta", group="experiment"):
            pass
        assert [s.name for s in instr.stages] == ["alpha", "beta"]
        assert all(s.seconds >= 0 for s in instr.stages)
        assert [s.name for s in instr.group("experiment")] == ["beta"]

    def test_stage_records_even_on_error(self):
        instr = Instrumentation()
        try:
            with instr.stage("boom"):
                raise RuntimeError("stage body failed")
        except RuntimeError:
            pass
        assert [s.name for s in instr.stages] == ["boom"]

    def test_counters_and_annotations(self):
        instr = Instrumentation()
        instr.incr("hits")
        instr.incr("hits", 2)
        instr.annotate("jobs", 4)
        assert instr.counters == {"hits": 3}
        assert instr.info == {"jobs": 4}

    def test_to_dict_groups_stages(self):
        instr = Instrumentation()
        with instr.stage("build-a"):
            pass
        with instr.stage("fig1", group="experiment"):
            pass
        payload = instr.to_dict()
        assert payload["schema"] == 1
        assert [s["name"] for s in payload["stages"]["build"]] == ["build-a"]
        assert [s["name"] for s in payload["stages"]["experiment"]] == [
            "fig1"
        ]
        assert payload["total_seconds"] >= 0

    def test_json_round_trips(self):
        instr = Instrumentation()
        with instr.stage("only"):
            pass
        assert json.loads(instr.to_json()) == json.loads(
            json.dumps(instr.to_dict(), sort_keys=True)
        )


class TestBuilderHooks:
    def test_build_world_records_every_stage(self):
        instr = Instrumentation()
        world = build_world(ScenarioConfig.tiny(), instrumentation=instr)
        names = [s.name for s in instr.group("build")]
        assert names == [
            "platform",
            "rir-pools",
            "signed-space",
            "unrouted-unsigned",
            "background",
            "drop-population",
            "case-study",
            "rir-as0",
        ]
        sizes = world_sizes(world)
        assert sizes["drop_prefixes"] == 712
        assert sizes["bgp_intervals"] == len(world.bgp)
        assert all(count > 0 for count in sizes.values())
