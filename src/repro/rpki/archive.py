"""The daily ROA archive (RIPE-style).

RIPE publishes a daily CSV of all validated ROA payloads; the study joins
that archive against DROP dates to ask "did this prefix have a ROA when it
was listed?", "when was it first signed?", and "with what ASN?".  As with
the other substrates we store the journal (ROA + lifetime) and derive daily
views, and we round-trip through the CSV snapshot format for fidelity.
"""

from __future__ import annotations

import csv
import io
import json
from datetime import date
from pathlib import Path
from typing import Iterable, Iterator

from ..net.prefix import IPv4Prefix
from ..net.radix import RadixTree
from .roa import Roa, RoaRecord
from .tal import TalSet

__all__ = ["RoaArchive"]

_CSV_HEADER = ["URI", "ASN", "IP Prefix", "Max Length", "Trust Anchor"]


class RoaArchive:
    """All ROA records over the data window, indexed by prefix."""

    def __init__(self) -> None:
        self._tree: RadixTree[list[RoaRecord]] = RadixTree()
        self._count = 0

    def add(self, record: RoaRecord) -> None:
        """Record one ROA lifetime."""
        bucket = self._tree.get(record.roa.prefix)
        if bucket is None:
            self._tree.insert(record.roa.prefix, [record])
        else:
            bucket.append(record)
        self._count += 1

    def extend(self, records: Iterable[RoaRecord]) -> None:
        """Record many ROA lifetimes."""
        for record in records:
            self.add(record)

    def __len__(self) -> int:
        return self._count

    def fork(self) -> "RoaArchive":
        """A copy-on-write fork sharing the immutable records."""
        forked = RoaArchive()
        forked._tree = self._tree.clone(copy_value=list.copy)
        forked._count = self._count
        return forked

    # -- retrieval ------------------------------------------------------------

    def records(self) -> Iterator[RoaRecord]:
        """Every record, grouped by prefix in address order."""
        for _, bucket in self._tree.items():
            yield from bucket

    def covering(
        self,
        prefix: IPv4Prefix,
        day: date | None = None,
        tals: TalSet | None = None,
    ) -> list[RoaRecord]:
        """ROAs whose prefix covers ``prefix``.

        Optionally restricted to ROAs published on ``day`` and to trust
        anchors in ``tals``.
        """
        found: list[RoaRecord] = []
        for _, bucket in self._tree.lookup_covering(prefix):
            for record in bucket:
                if day is not None and not record.active_on(day):
                    continue
                if tals is not None and not tals.trusts(
                    record.roa.trust_anchor
                ):
                    continue
                found.append(record)
        return sorted(found, key=lambda r: (r.roa.prefix, r.created))

    def covered(
        self,
        prefix: IPv4Prefix,
        day: date | None = None,
        tals: TalSet | None = None,
    ) -> list[RoaRecord]:
        """ROAs whose prefix is inside ``prefix`` (or equal)."""
        found: list[RoaRecord] = []
        for _, bucket in self._tree.lookup_covered(prefix):
            for record in bucket:
                if day is not None and not record.active_on(day):
                    continue
                if tals is not None and not tals.trusts(
                    record.roa.trust_anchor
                ):
                    continue
                found.append(record)
        return sorted(found, key=lambda r: (r.roa.prefix, r.created))

    def has_roa(
        self,
        prefix: IPv4Prefix,
        day: date,
        tals: TalSet | None = None,
    ) -> bool:
        """True if any trusted ROA covering ``prefix`` exists on ``day``.

        This is Table 1's notion of a prefix "having a ROA".
        """
        return bool(self.covering(prefix, day, tals or TalSet.default()))

    def roas_on(self, day: date, tals: TalSet | None = None) -> list[Roa]:
        """All ROAs published on ``day`` under trusted TALs."""
        tals = tals or TalSet.default()
        return [
            record.roa
            for record in self.records()
            if record.active_on(day) and tals.trusts(record.roa.trust_anchor)
        ]

    def first_signed(
        self,
        prefix: IPv4Prefix,
        tals: TalSet | None = None,
    ) -> date | None:
        """The first day a trusted ROA covering ``prefix`` was published."""
        tals = tals or TalSet.default()
        candidates = [
            record.created
            for record in self.covering(prefix, None, tals)
        ]
        return min(candidates) if candidates else None

    def signing_asns(
        self, prefix: IPv4Prefix, day: date, tals: TalSet | None = None
    ) -> set[int]:
        """ASNs in trusted ROAs covering ``prefix`` on ``day``."""
        return {
            record.roa.asn
            for record in self.covering(prefix, day, tals or TalSet.default())
        }

    # -- journal persistence -----------------------------------------------------

    def write_journal(self, path: Path) -> int:
        """Write the journal as JSONL; returns the record count."""
        with open(path, "w") as out:
            for record in self.records():
                json.dump(
                    {
                        "prefix": str(record.roa.prefix),
                        "asn": record.roa.asn,
                        "max_length": record.roa.max_length,
                        "trust_anchor": record.roa.trust_anchor,
                        "created": record.created.isoformat(),
                        "removed": (
                            None
                            if record.removed is None
                            else record.removed.isoformat()
                        ),
                    },
                    out,
                    separators=(",", ":"),
                )
                out.write("\n")
        return len(self)

    @classmethod
    def read_journal(cls, path: Path) -> "RoaArchive":
        """Read a journal written by :meth:`write_journal`."""
        archive = cls()
        with open(path) as source:
            for line in source:
                line = line.strip()
                if not line:
                    continue
                raw = json.loads(line)
                archive.add(
                    RoaRecord(
                        roa=Roa(
                            prefix=IPv4Prefix.parse(raw["prefix"]),
                            asn=raw["asn"],
                            max_length=raw["max_length"],
                            trust_anchor=raw["trust_anchor"],
                        ),
                        created=date.fromisoformat(raw["created"]),
                        removed=(
                            None
                            if raw["removed"] is None
                            else date.fromisoformat(raw["removed"])
                        ),
                    )
                )
        return archive

    # -- daily CSV snapshots (RIPE archive format) --------------------------------

    def snapshot_csv(self, day: date) -> str:
        """One day's ROAs in the RIPE ``roas.csv`` format."""
        out = io.StringIO()
        writer = csv.writer(out)
        writer.writerow(_CSV_HEADER)
        for record in self.records():
            if not record.active_on(day):
                continue
            roa = record.roa
            writer.writerow(
                [
                    f"rsync://rpki.example.net/{roa.trust_anchor.lower()}"
                    f"/{roa.prefix.network:08x}-{roa.prefix.length}.roa",
                    f"AS{roa.asn}",
                    str(roa.prefix),
                    roa.effective_max_length,
                    roa.trust_anchor,
                ]
            )
        return out.getvalue()

    @classmethod
    def from_snapshots(
        cls, snapshots: Iterable[tuple[date, str]]
    ) -> "RoaArchive":
        """Rebuild the journal by diffing day-ordered CSV snapshots.

        ROA identity is (prefix, ASN, maxLength, trust anchor), the
        fields the RIPE archive exposes.
        """
        archive = cls()
        open_since: dict[tuple, tuple[date, Roa]] = {}
        for day, text in sorted(snapshots, key=lambda s: s[0]):
            present: set[tuple] = set()
            for roa in _parse_csv(text):
                key = (roa.prefix, roa.asn, roa.max_length, roa.trust_anchor)
                present.add(key)
                if key not in open_since:
                    open_since[key] = (day, roa)
            for key in list(open_since):
                if key not in present:
                    created, roa = open_since.pop(key)
                    archive.add(
                        RoaRecord(roa=roa, created=created, removed=day)
                    )
        for created, roa in open_since.values():
            archive.add(RoaRecord(roa=roa, created=created))
        return archive


def _parse_csv(text: str) -> Iterator[Roa]:
    reader = csv.reader(io.StringIO(text))
    header = next(reader, None)
    if header != _CSV_HEADER:
        raise ValueError(f"unexpected ROA CSV header: {header}")
    for row in reader:
        if not row:
            continue
        _, asn_text, prefix_text, max_length_text, trust_anchor = row
        yield Roa(
            prefix=IPv4Prefix.parse(prefix_text),
            asn=int(asn_text.removeprefix("AS")),
            max_length=int(max_length_text),
            trust_anchor=trust_anchor,
        )
