"""Interval-based sets of IPv4 address space.

``PrefixSet`` stores an arbitrary collection of address space as a sorted
list of disjoint half-open integer intervals.  This is the workhorse for the
paper's address-space accounting: "6.7 /8 equivalents signed but unrouted",
"30.0 /8s allocated, unrouted, no ROA", and so on, are all computed as
unions/intersections/differences of prefix sets.

The class is mutable through :meth:`add` / :meth:`discard`; the set-algebra
operators (``|``, ``&``, ``-``) return new sets, so analyses can be written
functionally.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Iterable, Iterator

from .prefix import AddressRange, IPv4Prefix, slash8_equivalents

__all__ = ["PrefixSet"]


class PrefixSet:
    """A set of IPv4 address space backed by disjoint sorted intervals."""

    __slots__ = ("_starts", "_ends")

    def __init__(self, items: Iterable[IPv4Prefix | AddressRange | str] = ()) -> None:
        self._starts: list[int] = []
        self._ends: list[int] = []
        for item in items:
            self.add(item)

    # -- construction ---------------------------------------------------

    @classmethod
    def from_intervals(cls, intervals: Iterable[tuple[int, int]]) -> "PrefixSet":
        """Build from raw ``(start, end)`` half-open integer intervals.

        Bulk construction: sorts once and merges linearly, which is far
        faster than repeated :meth:`add` calls for large unordered inputs
        (the per-day space accounting over hundreds of thousands of
        allocations depends on this).

        Degenerate ``start == end`` intervals cover nothing and are
        skipped — a naive append would seed a zero-width interval that
        repeated :meth:`add` never produces, breaking ``__eq__`` between
        the two construction paths.  Inverted intervals raise
        :class:`ValueError`.
        """
        built = cls()
        for start, end in sorted(intervals):
            if end < start:
                raise ValueError(
                    f"inverted interval: start={start} > end={end}"
                )
            if start == end:
                continue
            if built._ends and start <= built._ends[-1]:
                if end > built._ends[-1]:
                    built._ends[-1] = end
            else:
                built._starts.append(start)
                built._ends.append(end)
        return built

    def copy(self) -> "PrefixSet":
        """An independent copy of this set."""
        duplicate = PrefixSet()
        duplicate._starts = list(self._starts)
        duplicate._ends = list(self._ends)
        return duplicate

    # -- mutation ---------------------------------------------------------

    def add(self, item: IPv4Prefix | AddressRange | str) -> None:
        """Add a prefix, range, or CIDR string to the set."""
        interval = _coerce(item)
        self._add_interval(interval.start, interval.end)

    def discard(self, item: IPv4Prefix | AddressRange | str) -> None:
        """Remove any covered portion of a prefix/range from the set."""
        interval = _coerce(item)
        self._remove_interval(interval.start, interval.end)

    def _add_interval(self, start: int, end: int) -> None:
        # Find the window of existing intervals that touch or overlap
        # [start, end) and coalesce them into one.
        lo = bisect_left(self._ends, start)
        hi = bisect_right(self._starts, end)
        if lo < hi:
            start = min(start, self._starts[lo])
            end = max(end, self._ends[hi - 1])
        self._starts[lo:hi] = [start]
        self._ends[lo:hi] = [end]

    def _remove_interval(self, start: int, end: int) -> None:
        lo = bisect_right(self._ends, start)
        hi = bisect_left(self._starts, end)
        if lo >= hi:
            return
        keep_starts: list[int] = []
        keep_ends: list[int] = []
        if self._starts[lo] < start:
            keep_starts.append(self._starts[lo])
            keep_ends.append(start)
        if self._ends[hi - 1] > end:
            keep_starts.append(end)
            keep_ends.append(self._ends[hi - 1])
        self._starts[lo:hi] = keep_starts
        self._ends[lo:hi] = keep_ends

    # -- queries ----------------------------------------------------------

    def __bool__(self) -> bool:
        return bool(self._starts)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PrefixSet):
            return NotImplemented
        return self._starts == other._starts and self._ends == other._ends

    def __hash__(self) -> int:  # pragma: no cover - sets are mutable
        raise TypeError("PrefixSet is unhashable")

    @property
    def num_addresses(self) -> int:
        """Total number of addresses covered."""
        return sum(e - s for s, e in zip(self._starts, self._ends))

    @property
    def slash8_equivalents(self) -> float:
        """Total address space covered, in /8 equivalents."""
        return slash8_equivalents(self.num_addresses)

    def contains_address(self, address: int) -> bool:
        """True if the integer address is covered by the set."""
        idx = bisect_right(self._starts, address) - 1
        return idx >= 0 and address < self._ends[idx]

    def contains(self, item: IPv4Prefix | AddressRange | str) -> bool:
        """True if the whole prefix/range is covered by the set."""
        interval = _coerce(item)
        idx = bisect_right(self._starts, interval.start) - 1
        return idx >= 0 and interval.end <= self._ends[idx]

    def overlaps(self, item: IPv4Prefix | AddressRange | str) -> bool:
        """True if the prefix/range shares any address with the set."""
        interval = _coerce(item)
        idx = bisect_left(self._ends, interval.start + 1)
        return idx < len(self._starts) and self._starts[idx] < interval.end

    def intervals(self) -> Iterator[AddressRange]:
        """Iterate the disjoint maximal ranges, in address order."""
        for start, end in zip(self._starts, self._ends):
            yield AddressRange(start, end)

    def iter_prefixes(self) -> Iterator[IPv4Prefix]:
        """Iterate a minimal CIDR decomposition of the set, in order."""
        for interval in self.intervals():
            yield from interval.to_prefixes()

    # -- set algebra -------------------------------------------------------

    def union(self, other: "PrefixSet") -> "PrefixSet":
        """The address space in either set."""
        result = self.copy()
        for start, end in zip(other._starts, other._ends):
            result._add_interval(start, end)
        return result

    def difference(self, other: "PrefixSet") -> "PrefixSet":
        """The address space in this set but not in ``other``."""
        result = self.copy()
        for start, end in zip(other._starts, other._ends):
            result._remove_interval(start, end)
        return result

    def intersection(self, other: "PrefixSet") -> "PrefixSet":
        """The address space in both sets (merge walk over both)."""
        result = PrefixSet()
        i = j = 0
        while i < len(self._starts) and j < len(other._starts):
            start = max(self._starts[i], other._starts[j])
            end = min(self._ends[i], other._ends[j])
            if start < end:
                result._starts.append(start)
                result._ends.append(end)
            if self._ends[i] < other._ends[j]:
                i += 1
            else:
                j += 1
        return result

    __or__ = union
    __sub__ = difference
    __and__ = intersection

    def __repr__(self) -> str:
        shown = ", ".join(str(r) for r in list(self.intervals())[:4])
        more = "" if len(self._starts) <= 4 else f", ... {len(self._starts)} ranges"
        return f"PrefixSet({shown}{more})"


def _coerce(item: IPv4Prefix | AddressRange | str) -> AddressRange:
    if isinstance(item, AddressRange):
        return item
    if isinstance(item, IPv4Prefix):
        return item.to_range()
    return IPv4Prefix.parse(item).to_range()
