"""Tests for the Kaplan-Meier survival extension."""

import pytest

from repro.analysis import analyze_survival, load_entries
from repro.analysis.survival import kaplan_meier
from repro.drop.categories import Category
from repro.synth import ScenarioConfig, build_world


class TestKaplanMeierEstimator:
    def test_no_censoring_matches_empirical(self):
        # All observed: S(t) is just the empirical survivor function.
        curve = kaplan_meier([(10, True), (20, True), (30, True)], "x")
        assert curve.at(5) == 1.0
        assert curve.at(10) == pytest.approx(2 / 3)
        assert curve.at(20) == pytest.approx(1 / 3)
        assert curve.at(30) == pytest.approx(0.0)

    def test_censoring_reduces_at_risk(self):
        # Censored at 15: the death at 20 applies to 1 remaining subject.
        curve = kaplan_meier([(10, True), (15, False), (20, True)], "x")
        assert curve.at(10) == pytest.approx(2 / 3)
        assert curve.at(20) == pytest.approx(0.0)
        assert curve.events == 2
        assert curve.censored == 1

    def test_all_censored_flat_curve(self):
        curve = kaplan_meier([(100, False), (200, False)], "x")
        assert curve.steps == ()
        assert curve.at(1000) == 1.0
        assert curve.median_lifetime() is None

    def test_ties_handled(self):
        curve = kaplan_meier(
            [(10, True), (10, True), (10, False), (20, True)], "x"
        )
        assert curve.at(10) == pytest.approx(0.5)
        assert curve.at(20) == pytest.approx(0.0)

    def test_survival_monotone_nonincreasing(self):
        curve = kaplan_meier(
            [(i, i % 3 != 0) for i in range(1, 40)], "x"
        )
        values = [v for _, v in curve.steps]
        assert values == sorted(values, reverse=True)

    def test_median(self):
        curve = kaplan_meier([(5, True), (10, True), (20, True),
                              (30, True)], "x")
        assert curve.median_lifetime() == 10


class TestWorldSurvival:
    @pytest.fixture(scope="class")
    def result(self):
        world = build_world(ScenarioConfig.tiny())
        return analyze_survival(world, load_entries(world))

    def test_overall_matches_fig2_point(self, result):
        # 1 - S(30) reproduces the paper's 19% within tolerance.
        assert 1 - result.overall.at(30) == pytest.approx(0.19, abs=0.04)

    def test_hijacked_die_fastest(self, result):
        hijacked = result.curve(Category.HIJACKED)
        for category in (Category.SNOWSHOE, Category.KNOWN_SPAM,
                         Category.MALICIOUS_HOSTING, Category.NO_RECORD):
            assert hijacked.at(30) < result.curve(category).at(30)

    def test_hijacked_median_within_a_month(self, result):
        median = result.curve(Category.HIJACKED).median_lifetime()
        assert median is not None and median <= 31

    def test_hosting_mostly_censored(self, result):
        hosting = result.curve(Category.MALICIOUS_HOSTING)
        assert hosting.censored > 0.8 * hosting.subjects
        assert hosting.median_lifetime() is None

    def test_unallocated_between_hijacked_and_hosting(self, result):
        hijacked = result.curve(Category.HIJACKED).at(30)
        unallocated = result.curve(Category.UNALLOCATED).at(30)
        hosting = result.curve(Category.MALICIOUS_HOSTING).at(30)
        assert hijacked < unallocated < hosting
