"""Figure 1: classification of DROP entries by prefixes and address space."""

from repro.analysis import classify_drop
from repro.drop.categories import Category


def bench_fig1_classification(benchmark, world, entries):
    result = benchmark(classify_drop, world, entries)
    # Shape: snowshoe dominates by prefix count but not by space; the
    # incidents dominate the space; NR is the second-largest prefix bar.
    assert result.total_prefixes == 712
    assert result.bar(Category.SNOWSHOE).total_prefixes == max(
        b.total_prefixes for b in result.bars
    )
    assert result.space_share(Category.SNOWSHOE) < 0.15
    assert 0.4 < result.incident_space_share < 0.6
    assert result.bar(Category.HIJACKED).addresses > (
        result.bar(Category.SNOWSHOE).addresses
    )


def bench_table2_keyword_stats(benchmark, world, entries):
    result = benchmark(classify_drop, world, entries)
    # Appendix A: most records classify from a single keyword.
    stats = result.keyword_stats
    assert stats["one"] > 0.8
    assert stats["two_or_more"] < 0.1
    assert stats["none"] < 0.15
