"""Tests for the repro.query serving subsystem."""
