"""Scenario-DSL golden tests: the DSL path is byte-identical.

The five paper playbooks, re-expressed as DSL compositions and run
through the generic :func:`apply_playbooks` machinery, must produce a
world whose saved archives match the legacy
``build_world`` path byte for byte — every file, every byte.  This is
the contract that let the old ``repro.synth.scenarios`` home retire:
the DSL is a reorganization, not a reimplementation.
"""

import filecmp
import importlib
from pathlib import Path

import pytest

from repro.scenarios import (
    PAPER_PLAYBOOKS,
    PIPELINE,
    Scenario,
    apply_playbooks,
    build_scenario_world,
)
from repro.synth import ScenarioConfig, build_world, save_world


def _tree(directory: Path) -> dict[str, Path]:
    return {
        str(p.relative_to(directory)): p
        for p in sorted(directory.rglob("*"))
        if p.is_file()
    }


class TestByteIdentity:
    @pytest.mark.parametrize("seed", (2022, 5))
    def test_dsl_archives_match_legacy_byte_for_byte(self, tmp_path, seed):
        legacy_dir = tmp_path / f"legacy-{seed}"
        dsl_dir = tmp_path / f"dsl-{seed}"
        save_world(
            build_world(ScenarioConfig.tiny(seed=seed)),
            legacy_dir,
            drop_step_days=1,
        )
        save_world(
            build_scenario_world(Scenario.paper(scale="tiny", seed=seed)),
            dsl_dir,
            drop_step_days=1,
        )
        legacy_files = _tree(legacy_dir)
        dsl_files = _tree(dsl_dir)
        assert set(legacy_files) == set(dsl_files)
        different = [
            name
            for name in legacy_files
            if not filecmp.cmp(
                legacy_files[name], dsl_files[name], shallow=False
            )
        ]
        assert different == [], (
            f"DSL archives differ from legacy: {different}"
        )


class TestPlaybookMachinery:
    def test_paper_playbooks_cover_every_pipeline_slot_once(self):
        claimed = [
            slot for pb in PAPER_PLAYBOOKS for slot, _ in pb.hooks
        ]
        assert sorted(claimed) == sorted(PIPELINE)
        assert len(claimed) == len(set(claimed))

    def test_duplicate_slot_claims_rejected(self):
        with pytest.raises(ValueError):
            apply_playbooks(
                object(), (PAPER_PLAYBOOKS[0], PAPER_PLAYBOOKS[0])
            )

    def test_legacy_shim_retired(self):
        # repro.synth.scenarios served its deprecation window and was
        # removed; repro.scenarios.playbooks is the one home now.
        with pytest.raises(ModuleNotFoundError):
            importlib.import_module("repro.synth.scenarios")
        from repro.scenarios import playbooks

        assert callable(playbooks.build_drop_population)
        assert callable(playbooks.build_case_study)
