"""The :mod:`repro.api` façade is the supported import surface.

These tests pin the contract downstream code relies on: every exported
name resolves to the same object as its home module, the package root
delegates to the façade, and the error family keeps its stable codes.
"""

import importlib

import pytest

import repro
import repro.api as api


class TestFacadeExports:
    def test_every_name_resolves(self):
        for name in api.__all__:
            assert getattr(api, name) is not None

    def test_names_match_home_modules(self):
        # The façade re-exports, never wraps: identity with the object
        # in the defining module.
        for name, module_name in api._EXPORTS.items():
            home = importlib.import_module(module_name)
            assert getattr(api, name) is getattr(home, name), name

    def test_all_is_sorted_and_complete(self):
        assert api.__all__ == sorted(api._EXPORTS)
        assert set(api.__all__) <= set(dir(api))

    def test_unknown_name_raises(self):
        with pytest.raises(AttributeError, match="no attribute"):
            api.definitely_not_exported

    def test_core_surface_present(self):
        # The names the README promises, spelled out so a rename here
        # is a deliberate act, not an accident.
        for name in (
            "ScenarioConfig",
            "build_world",
            "WorldCache",
            "QueryEngine",
            "QueryServer",
            "AsyncQueryServer",
            "run_experiment",
            "run_sweep",
            "Ingestor",
            "apply_delta",
            "compute_delta",
            "build_index_as_of",
            "ReproError",
        ):
            assert name in api.__all__, name


class TestPackageDelegation:
    def test_root_delegates_to_facade(self):
        for name in api.__all__:
            assert getattr(repro, name) is getattr(api, name), name

    def test_root_all_covers_facade(self):
        assert set(api.__all__) <= set(repro.__all__)
        assert "__version__" in repro.__all__

    def test_unknown_root_name_raises(self):
        with pytest.raises(AttributeError, match="no attribute"):
            repro.definitely_not_exported

    def test_dunder_lookup_not_swallowed(self):
        # copy.copy and friends probe dunders on modules; those must
        # fail fast, not import the whole façade.
        with pytest.raises(AttributeError):
            repro.__wrapped__


class TestErrorFamily:
    def test_every_error_has_a_stable_code(self):
        errors = [
            name for name in api.__all__ if name.endswith("Error")
        ]
        assert len(errors) >= 10
        for name in errors:
            cls = getattr(api, name)
            assert issubclass(cls, repro.ReproError), name
            assert isinstance(cls.code, str) and "." in cls.code, name

    def test_ingest_errors_exported(self):
        assert issubclass(api.IngestError, repro.ReproError)
        assert api.IngestError.code == "ingest.failed"
        assert issubclass(api.JournalLoadError, repro.ReproError)
