"""Unit tests for the span tracer (repro.obs.spans)."""

import json
import threading

import pytest

from repro.obs import TRACE_ENV, Tracer, trace_path_from_env


class TestSpanNesting:
    def test_context_manager_nests(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        # Children finish (and land in the buffer) before their parents.
        assert [s.name for s in tracer.finished] == ["inner", "outer"]
        assert outer.duration > 0 and inner.duration > 0

    def test_sequential_ids_are_deterministic(self):
        for _ in range(2):
            tracer = Tracer()
            with tracer.span("a"):
                with tracer.span("b"):
                    pass
            with tracer.span("c"):
                pass
            assert [(s.span_id, s.parent_id) for s in tracer.finished] == [
                (2, 1), (1, None), (3, None)
            ]

    def test_attributes_and_error_marker(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("doomed", stage="x"):
                raise RuntimeError("boom")
        (span,) = tracer.finished
        assert span.attributes == {"stage": "x", "error": "RuntimeError"}

    def test_decorator(self):
        tracer = Tracer()

        @tracer.traced()
        def work(x):
            return x + 1

        assert work(1) == 2
        (span,) = tracer.finished
        assert span.name.endswith("work")

    def test_record_external_timing(self):
        tracer = Tracer()
        with tracer.span("parent") as parent:
            pass
        span = tracer.record(
            "ext", 1.5, parent_id=parent.span_id, group="experiment"
        )
        assert span.duration == 1.5
        assert span.parent_id == parent.span_id

    def test_threads_nest_independently(self):
        tracer = Tracer()
        seen = {}

        def worker(name):
            with tracer.span(name) as span:
                seen[name] = span.parent_id

        with tracer.span("main"):
            threads = [
                threading.Thread(target=worker, args=(f"t{i}",))
                for i in range(2)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        # Handler-style threads must not inherit another thread's open
        # span as their parent.
        assert seen == {"t0": None, "t1": None}


class TestAdopt:
    def _worker_trace(self):
        worker = Tracer()
        with worker.span("w-outer", experiment="fig1"):
            with worker.span("w-inner"):
                pass
        with worker.span("w-second"):
            pass
        return worker.export()

    def test_reparents_roots_and_remaps_links(self):
        parent = Tracer()
        anchor = parent.record("fig1", 0.5, group="experiment")
        adopted = parent.adopt(self._worker_trace(), parent_id=anchor.span_id)
        by_name = {s.name: s for s in adopted}
        assert by_name["w-outer"].parent_id == anchor.span_id
        assert by_name["w-second"].parent_id == anchor.span_id
        # The internal child link is remapped to the *local* parent id,
        # even though the child exported before its parent.
        assert by_name["w-inner"].parent_id == by_name["w-outer"].span_id
        local_ids = {s.span_id for s in parent.finished}
        assert len(local_ids) == len(parent.finished)  # no id collisions

    def test_adopt_under_none_makes_roots(self):
        parent = Tracer()
        adopted = parent.adopt(self._worker_trace(), parent_id=None)
        roots = [s for s in adopted if s.name != "w-inner"]
        assert all(s.parent_id is None for s in roots)


class TestExportJsonl:
    def test_round_trip(self, tmp_path):
        tracer = Tracer()
        with tracer.span("a", group="build"):
            pass
        path = tmp_path / "trace.jsonl"
        tracer.write_jsonl(path)
        tracer.write_jsonl(path)  # appends, never truncates
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        record = json.loads(lines[0])
        assert record["name"] == "a"
        assert record["attrs"] == {"group": "build"}
        assert set(record) == {
            "span", "parent", "name", "start", "duration", "attrs", "pid"
        }

    def test_trace_path_from_env(self, monkeypatch, tmp_path):
        monkeypatch.delenv(TRACE_ENV, raising=False)
        assert trace_path_from_env() is None
        monkeypatch.setenv(TRACE_ENV, str(tmp_path / "t.jsonl"))
        assert trace_path_from_env() == tmp_path / "t.jsonl"
