"""Day-resolution time utilities.

Every archive in the study (DROP snapshots, ROA archive, RADb journal, RIR
delegated stats, RIB snapshots) is daily, so the whole reproduction works at
day resolution using ``datetime.date``.  This module provides:

* :data:`STUDY_START` / :data:`STUDY_END` — the paper's measurement window
  (June 5 2019 – March 30 2022);
* :class:`DateWindow` — an inclusive window of days with containment,
  clamping, and iteration;
* :class:`StepFunction` — a value that changes at dated breakpoints
  (allocation status, ROA presence, ...);
* :class:`DailySeries` — a dense per-day numeric series for figures.
"""

from __future__ import annotations

import re
from bisect import bisect_right
from dataclasses import dataclass
from datetime import date, timedelta
from typing import Generic, Iterator, TypeVar

__all__ = [
    "DAY",
    "STUDY_END",
    "STUDY_START",
    "STUDY_WINDOW",
    "DailySeries",
    "DateWindow",
    "StepFunction",
    "date_range",
    "month_starts",
    "parse_date",
]

DAY = timedelta(days=1)

#: First day of the paper's measurement window.
STUDY_START = date(2019, 6, 5)
#: Last day of the paper's measurement window.
STUDY_END = date(2022, 3, 30)

T = TypeVar("T")


_ISO_DATE = re.compile(r"^(\d{4})-(\d{1,2})-(\d{1,2})$")
_COMPACT_DATE = re.compile(r"^\d{8}$")


def parse_date(text: str) -> date:
    """Parse ``YYYY-MM-DD`` or the RIR-stats ``YYYYMMDD`` form.

    Anything else — trailing garbage, truncated input, an impossible
    calendar date like ``2021-02-30`` — raises ``ValueError`` naming the
    offending text, so a torn archive line surfaces as a parse failure
    rather than a silently wrong day.
    """
    cleaned = text.strip()
    match = _ISO_DATE.match(cleaned)
    if match is not None:
        year, month, day = (int(part) for part in match.groups())
    elif _COMPACT_DATE.match(cleaned):
        year, month, day = (
            int(cleaned[0:4]), int(cleaned[4:6]), int(cleaned[6:8])
        )
    else:
        raise ValueError(
            f"invalid date {text!r} (expected YYYY-MM-DD or YYYYMMDD)"
        )
    try:
        return date(year, month, day)
    except ValueError as error:
        raise ValueError(f"invalid date {text!r}: {error}") from None


def date_range(start: date, end: date, step_days: int = 1) -> Iterator[date]:
    """Iterate days from ``start`` to ``end`` inclusive."""
    step = timedelta(days=step_days)
    current = start
    while current <= end:
        yield current
        current += step


def month_starts(start: date, end: date) -> Iterator[date]:
    """Iterate the first-of-month dates within [start, end]."""
    current = date(start.year, start.month, 1)
    if current < start:
        current = _next_month(current)
    while current <= end:
        yield current
        current = _next_month(current)


def _next_month(day: date) -> date:
    if day.month == 12:
        return date(day.year + 1, 1, 1)
    return date(day.year, day.month + 1, 1)


@dataclass(frozen=True, slots=True)
class DateWindow:
    """An inclusive window of days ``[start, end]``."""

    start: date
    end: date

    def __post_init__(self) -> None:
        if self.start > self.end:
            raise ValueError(f"window start {self.start} after end {self.end}")

    @property
    def days(self) -> int:
        """Number of days in the window, inclusive of both endpoints."""
        return (self.end - self.start).days + 1

    def __contains__(self, day: date) -> bool:
        return self.start <= day <= self.end

    def __iter__(self) -> Iterator[date]:
        return date_range(self.start, self.end)

    def clamp(self, day: date) -> date:
        """The nearest day inside the window."""
        return min(max(day, self.start), self.end)

    def overlaps(self, other: "DateWindow") -> bool:
        """True if the two windows share at least one day."""
        return self.start <= other.end and other.start <= self.end

    def shifted(self, days: int) -> "DateWindow":
        """The window moved by a signed number of days."""
        delta = timedelta(days=days)
        return DateWindow(self.start + delta, self.end + delta)


#: The paper's measurement window as a :class:`DateWindow`.
STUDY_WINDOW = DateWindow(STUDY_START, STUDY_END)


class StepFunction(Generic[T]):
    """A piecewise-constant value over time.

    The function holds ``default`` before the first breakpoint and the most
    recent breakpoint's value afterwards.  Breakpoints may be inserted out
    of order; setting the same day twice keeps the later value.
    """

    __slots__ = ("_days", "_values", "_default")

    def __init__(self, default: T) -> None:
        self._days: list[date] = []
        self._values: list[T] = []
        self._default = default

    def set(self, day: date, value: T) -> None:
        """From ``day`` onward (until the next breakpoint), be ``value``."""
        idx = bisect_right(self._days, day)
        if idx > 0 and self._days[idx - 1] == day:
            self._values[idx - 1] = value
        else:
            self._days.insert(idx, day)
            self._values.insert(idx, value)

    def value_at(self, day: date) -> T:
        """The value in effect on ``day``."""
        idx = bisect_right(self._days, day)
        return self._default if idx == 0 else self._values[idx - 1]

    def breakpoints(self) -> Iterator[tuple[date, T]]:
        """Iterate ``(day, value)`` breakpoints in date order."""
        yield from zip(self._days, self._values)

    def first_day_with(self, predicate) -> date | None:
        """The earliest breakpoint day whose value satisfies ``predicate``."""
        for day, value in zip(self._days, self._values):
            if predicate(value):
                return day
        return None

    def __len__(self) -> int:
        return len(self._days)


class DailySeries:
    """A dense per-day float series over a window (for figures).

    Values default to 0.0; arithmetic is pointwise over the same window.
    """

    __slots__ = ("window", "_values")

    def __init__(self, window: DateWindow, fill: float = 0.0) -> None:
        self.window = window
        self._values = [fill] * window.days

    def _index(self, day: date) -> int:
        if day not in self.window:
            raise KeyError(f"{day} outside {self.window.start}..{self.window.end}")
        return (day - self.window.start).days

    def __getitem__(self, day: date) -> float:
        return self._values[self._index(day)]

    def __setitem__(self, day: date, value: float) -> None:
        self._values[self._index(day)] = value

    def increment(self, day: date, amount: float = 1.0) -> None:
        """Add ``amount`` to the value on ``day``."""
        self._values[self._index(day)] += amount

    def add_interval(self, start: date, end: date, amount: float = 1.0) -> None:
        """Add ``amount`` to every day in [start, end] ∩ window."""
        if end < self.window.start or start > self.window.end:
            return
        lo = self._index(self.window.clamp(start))
        hi = self._index(self.window.clamp(end))
        for idx in range(lo, hi + 1):
            self._values[idx] += amount

    def items(self) -> Iterator[tuple[date, float]]:
        """Iterate ``(day, value)`` pairs in date order."""
        for offset, value in enumerate(self._values):
            yield self.window.start + timedelta(days=offset), value

    def values(self) -> list[float]:
        """The raw value list, in date order."""
        return list(self._values)

    def sample(self, days: Iterator[date] | list[date]) -> list[tuple[date, float]]:
        """The series restricted to the given days."""
        return [(day, self[day]) for day in days]
