"""The scenario DSL: declarative attack/defense compositions.

A :class:`Scenario` is the composable successor to the hard-coded
playbooks (now :mod:`repro.scenarios.playbooks`): a *base world* (the paper's
generator at some scale and seed) plus any number of attacker
behaviours and defense deployments layered on top.  Every piece is a
frozen dataclass with the same canonical-JSON serialization discipline
as :class:`~repro.synth.config.ScenarioConfig` — dates flatten to ISO
strings, mappings keep sorted key order — so scenarios are
content-addressable and the scenario cache keys on
:meth:`Scenario.content_hash` exactly like the world cache keys on the
config hash.

Attack families (one instance announces ``count`` attacks):

* ``prefix-hijack`` — same-prefix forged-origin announcement of a
  ROA-covered victim prefix; RPKI-invalid, so ROV blocks it.
* ``subprefix-hijack`` — a more-specific announcement under an exact
  ROA; invalid by length, ROV blocks it.
* ``roa-downgrade`` — the Stalloris regime: the victim's ROA has gone
  stale (expired from the repository) by the attack day, so the hijack
  validates NOT_FOUND and ROV does *not* block it.
* ``maxlength-abuse`` — a loose-maxLength ROA lets a forged-origin
  sub-prefix announcement validate VALID; ROV is bypassed entirely.
* ``as0-misconfig`` — the operator signs AS0 over their own routed
  space; their *legitimate* route turns invalid and ROV adopters drop
  it (collateral damage, no attacker announcement at all).

Defense deployments (rates are fractions of full-table peers):

* ``rov`` — peers dropping RPKI-invalid routes.
* ``route-server`` — additional peers behind IXP route servers that
  filter invalids at the fabric ("Keep Your Friends Close...").
* ``drop-subscription`` — peers subscribing to DROP, who stop carrying
  an attack route once it is listed (``listing_delay_days`` after the
  attack begins).

The names in :data:`ATTACK_FAMILIES` / :data:`DEFENSE_KINDS` are the
wire format: :meth:`Scenario.from_dict` reconstructs a scenario from
its canonical document, so sweep specs and cache sidecars round-trip.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field, fields
from datetime import date
from typing import ClassVar

from ..errors import ReproError
from ..synth.config import ScenarioConfig

__all__ = [
    "ATTACK_FAMILIES",
    "DEFENSE_KINDS",
    "As0Misconfig",
    "AttackSpec",
    "DefenseSpec",
    "DropSubscription",
    "MaxLengthAbuse",
    "PrefixHijack",
    "RoaDowngrade",
    "RouteServerFiltering",
    "RovDeployment",
    "Scenario",
    "ScenarioSpecError",
    "SubPrefixHijack",
    "WorldScale",
    "canonical",
]

#: World-scale presets a scenario base may name.
_SCALES = {
    "tiny": ScenarioConfig.tiny,
    "small": ScenarioConfig.small,
    "paper": ScenarioConfig.paper,
}


class ScenarioSpecError(ReproError, ValueError):
    """A scenario document or parameter that does not validate."""

    code = "scenarios.spec"


def canonical(value):
    """Flatten a value into canonical-JSON form.

    The same discipline as
    :meth:`~repro.synth.config.ScenarioConfig.canonical_dict`: dates
    become ISO strings, mapping keys sort, sequences become lists —
    so equal specs always serialize to the same document.
    """
    if isinstance(value, date):
        return value.isoformat()
    if isinstance(value, dict):
        return {k: canonical(value[k]) for k in sorted(value)}
    if isinstance(value, (list, tuple)):
        return [canonical(v) for v in value]
    return value


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ScenarioSpecError(message)


@dataclass(frozen=True)
class WorldScale:
    """The base world a scenario builds on: generator scale and seed."""

    scale: str = "tiny"
    seed: int = 2022

    def __post_init__(self) -> None:
        _require(
            self.scale in _SCALES,
            f"unknown world scale {self.scale!r} "
            f"(expected one of: {', '.join(sorted(_SCALES))})",
        )
        _require(
            isinstance(self.seed, int) and not isinstance(self.seed, bool),
            f"seed must be an int, got {self.seed!r}",
        )

    def to_config(self) -> ScenarioConfig:
        """The generator config this base resolves to."""
        return _SCALES[self.scale](seed=self.seed)


@dataclass(frozen=True)
class AttackSpec:
    """Base of every attack family; ``family`` is the wire name."""

    family: ClassVar[str] = ""

    count: int = 4

    def __post_init__(self) -> None:
        _require(
            isinstance(self.count, int) and self.count >= 1,
            f"{self.family}: count must be >= 1, got {self.count!r}",
        )

    def canonical_dict(self) -> dict:
        doc = {"family": self.family}
        doc.update(canonical(asdict(self)))
        return doc


@dataclass(frozen=True)
class PrefixHijack(AttackSpec):
    """Same-prefix forged-origin hijack of a ROA-covered prefix."""

    family: ClassVar[str] = "prefix-hijack"


@dataclass(frozen=True)
class SubPrefixHijack(AttackSpec):
    """More-specific hijack under an exact (no-maxLength) ROA."""

    family: ClassVar[str] = "subprefix-hijack"

    #: How many bits more specific the attack announcement is.
    extra_length: int = 2

    def __post_init__(self) -> None:
        super().__post_init__()
        _require(
            1 <= self.extra_length <= 8,
            f"subprefix-hijack: extra_length must be in [1, 8], "
            f"got {self.extra_length!r}",
        )


@dataclass(frozen=True)
class RoaDowngrade(AttackSpec):
    """Stalloris-style stale-ROA downgrade: the victim's ROA expired."""

    family: ClassVar[str] = "roa-downgrade"

    #: Days before the attack the victim's ROA dropped out of the
    #: repository (stale data the validator no longer serves).
    stale_days: int = 30

    def __post_init__(self) -> None:
        super().__post_init__()
        _require(
            self.stale_days >= 1,
            f"roa-downgrade: stale_days must be >= 1, "
            f"got {self.stale_days!r}",
        )


@dataclass(frozen=True)
class MaxLengthAbuse(AttackSpec):
    """Forged-origin sub-prefix hijack inside a loose maxLength ROA."""

    family: ClassVar[str] = "maxlength-abuse"

    #: The ROA's maxLength (clamped to at least victim length + 1).
    max_length: int = 24

    def __post_init__(self) -> None:
        super().__post_init__()
        _require(
            8 <= self.max_length <= 32,
            f"maxlength-abuse: max_length must be in [8, 32], "
            f"got {self.max_length!r}",
        )


@dataclass(frozen=True)
class As0Misconfig(AttackSpec):
    """Operator AS0 misconfiguration over their own routed space."""

    family: ClassVar[str] = "as0-misconfig"


@dataclass(frozen=True)
class DefenseSpec:
    """Base of every defense deployment; ``kind`` is the wire name."""

    kind: ClassVar[str] = ""

    #: Deployment rate as a fraction of full-table peers.
    rate: float = 0.0

    def __post_init__(self) -> None:
        _require(
            isinstance(self.rate, (int, float))
            and 0.0 <= float(self.rate) <= 1.0,
            f"{self.kind}: rate must be in [0, 1], got {self.rate!r}",
        )

    def canonical_dict(self) -> dict:
        doc = {"kind": self.kind}
        doc.update(canonical(asdict(self)))
        return doc


@dataclass(frozen=True)
class RovDeployment(DefenseSpec):
    """ROV at ``rate`` of full-table peers: invalid routes dropped."""

    kind: ClassVar[str] = "rov"


@dataclass(frozen=True)
class RouteServerFiltering(DefenseSpec):
    """Additional peers behind invalid-filtering IXP route servers."""

    kind: ClassVar[str] = "route-server"


@dataclass(frozen=True)
class DropSubscription(DefenseSpec):
    """Peers subscribing to DROP: attack routes drop once listed."""

    kind: ClassVar[str] = "drop-subscription"

    #: Days between the attack announcement and its DROP listing.
    listing_delay_days: int = 7

    def __post_init__(self) -> None:
        super().__post_init__()
        _require(
            self.listing_delay_days >= 0,
            f"drop-subscription: listing_delay_days must be >= 0, "
            f"got {self.listing_delay_days!r}",
        )


#: Wire name → attack class, the parse registry for :meth:`from_dict`.
ATTACK_FAMILIES: dict[str, type[AttackSpec]] = {
    cls.family: cls
    for cls in (
        PrefixHijack,
        SubPrefixHijack,
        RoaDowngrade,
        MaxLengthAbuse,
        As0Misconfig,
    )
}

#: Wire name → defense class.
DEFENSE_KINDS: dict[str, type[DefenseSpec]] = {
    cls.kind: cls
    for cls in (RovDeployment, RouteServerFiltering, DropSubscription)
}


def _parse_piece(payload: dict, registry: dict, tag: str, what: str):
    if not isinstance(payload, dict) or tag not in payload:
        raise ScenarioSpecError(
            f"{what} document must be an object with a {tag!r} field: "
            f"{payload!r}"
        )
    name = payload[tag]
    cls = registry.get(name)
    if cls is None:
        raise ScenarioSpecError(
            f"unknown {what} {name!r} "
            f"(expected one of: {', '.join(sorted(registry))})"
        )
    known = {f.name for f in fields(cls)}
    params = {k: v for k, v in payload.items() if k != tag}
    unknown = sorted(set(params) - known)
    if unknown:
        raise ScenarioSpecError(
            f"{what} {name!r} does not accept: {', '.join(unknown)}"
        )
    return cls(**params)


@dataclass(frozen=True)
class Scenario:
    """A composed scenario: base world × attacks × defenses.

    ``name`` is a display label only — it does **not** participate in
    :meth:`canonical_dict` or :meth:`content_hash`, so two sweeps
    naming the same cell differently still share one cache entry.
    """

    name: str = "scenario"
    base: WorldScale = field(default_factory=WorldScale)
    attacks: tuple[AttackSpec, ...] = ()
    defenses: tuple[DefenseSpec, ...] = ()

    def __post_init__(self) -> None:
        _require(bool(self.name), "scenario name must be non-empty")
        for attack in self.attacks:
            _require(
                isinstance(attack, AttackSpec),
                f"not an attack spec: {attack!r}",
            )
        kinds = [d.kind for d in self.defenses]
        for defense in self.defenses:
            _require(
                isinstance(defense, DefenseSpec),
                f"not a defense spec: {defense!r}",
            )
        dupes = sorted({k for k in kinds if kinds.count(k) > 1})
        _require(
            not dupes,
            f"duplicate defense kind(s): {', '.join(dupes)}",
        )

    # -- content addressing ----------------------------------------------

    def canonical_dict(self) -> dict:
        """The stable document behind the scenario cache key."""
        return {
            "base": canonical(asdict(self.base)),
            "attacks": [a.canonical_dict() for a in self.attacks],
            "defenses": [d.canonical_dict() for d in self.defenses],
        }

    def content_hash(self) -> str:
        """SHA-256 of the canonical scenario document (hex digest)."""
        payload = json.dumps(
            self.canonical_dict(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def to_json(self) -> str:
        """The canonical document plus the display name, as JSON."""
        doc = {"name": self.name}
        doc.update(self.canonical_dict())
        return json.dumps(doc, indent=2, sort_keys=True)

    # -- parsing -----------------------------------------------------------

    @classmethod
    def from_dict(cls, payload: dict) -> "Scenario":
        """Reconstruct a scenario from its (canonical) document."""
        if not isinstance(payload, dict):
            raise ScenarioSpecError(
                f"scenario document must be an object, got {payload!r}"
            )
        unknown = sorted(
            set(payload) - {"name", "base", "attacks", "defenses"}
        )
        if unknown:
            raise ScenarioSpecError(
                f"scenario document does not accept: {', '.join(unknown)}"
            )
        base_doc = payload.get("base", {})
        if not isinstance(base_doc, dict):
            raise ScenarioSpecError(f"scenario base must be an object: {base_doc!r}")
        try:
            base = WorldScale(**base_doc)
        except TypeError as error:
            raise ScenarioSpecError(f"bad scenario base: {error}") from None
        try:
            attacks = tuple(
                _parse_piece(doc, ATTACK_FAMILIES, "family", "attack family")
                for doc in payload.get("attacks", ())
            )
            defenses = tuple(
                _parse_piece(doc, DEFENSE_KINDS, "kind", "defense kind")
                for doc in payload.get("defenses", ())
            )
        except TypeError as error:
            raise ScenarioSpecError(f"bad scenario piece: {error}") from None
        return cls(
            name=payload.get("name", "scenario"),
            base=base,
            attacks=attacks,
            defenses=defenses,
        )

    @classmethod
    def from_json(cls, text: str) -> "Scenario":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as error:
            raise ScenarioSpecError(
                f"scenario document is not valid JSON: {error}"
            ) from None
        return cls.from_dict(payload)

    # -- presets -----------------------------------------------------------

    @classmethod
    def paper(cls, scale: str = "paper", seed: int = 2022) -> "Scenario":
        """The paper's own playbooks, no overlays: the legacy world."""
        return cls(
            name=f"paper-{scale}", base=WorldScale(scale=scale, seed=seed)
        )
