"""Sweep specifications: grids (or random samples) of scenarios.

A :class:`SweepSpec` names the axes of a defense-effectiveness
experiment — attack families x ROV deployment rates x DROP
subscription rates x route-server filtering rates, over one world
scale and seed — and expands into concrete scenario *cells* via
:meth:`SweepSpec.cells`.  Specs load from JSON (``repro-drop sweep
--spec grid.json``) or CLI flags, reject unknown keys and out-of-range
axes up front (:class:`SweepSpecError`, code ``sweep.spec``), and
serialize canonically so a sweep's report embeds exactly what ran.

Cell naming is deterministic (``family/rovP/dropQ/rsR``) and cell
*identity* is the scenario content hash — two sweeps sharing a cell
share its cache entry, which is what makes re-runs and overlapping
sweeps cheap.
"""

from __future__ import annotations

import json
import random
from dataclasses import asdict, dataclass, fields

from ..errors import ReproError
from ..scenarios.spec import (
    ATTACK_FAMILIES,
    DropSubscription,
    RouteServerFiltering,
    RovDeployment,
    Scenario,
    WorldScale,
)

__all__ = ["DEFAULT_FAMILIES", "SweepSpec", "SweepSpecError"]


class SweepSpecError(ReproError, ValueError):
    """An invalid sweep spec (unknown family, bad rate, bad JSON)."""

    code = "sweep.spec"


#: The three families a default sweep compares (the ISSUE's "beyond
#: the paper's originals" trio); the full registry adds
#: ``maxlength-abuse`` and ``as0-misconfig``.
DEFAULT_FAMILIES = ("prefix-hijack", "subprefix-hijack", "roa-downgrade")


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise SweepSpecError(message)


def _rates(value, label: str) -> tuple[float, ...]:
    try:
        rates = tuple(float(v) for v in value)
    except (TypeError, ValueError) as error:
        raise SweepSpecError(f"{label} must be a list of numbers") from error
    _require(len(rates) >= 1, f"{label} must name at least one rate")
    for rate in rates:
        _require(0.0 <= rate <= 1.0, f"{label} rate {rate} not in [0, 1]")
    _require(
        len(set(rates)) == len(rates), f"{label} contains duplicate rates"
    )
    return rates


@dataclass(frozen=True)
class SweepSpec:
    """One sweep: axes x scale, expandable into scenario cells."""

    name: str = "sweep"
    scale: str = "tiny"
    seed: int = 2022
    families: tuple[str, ...] = DEFAULT_FAMILIES
    attack_count: int = 4
    rov_rates: tuple[float, ...] = (0.0, 0.5)
    drop_rates: tuple[float, ...] = (0.0,)
    route_server_rates: tuple[float, ...] = (0.0,)
    listing_delay_days: int = 7
    #: Draw this many cells at random from the full grid (None = all).
    sample: int | None = None
    sample_seed: int = 0

    def __post_init__(self) -> None:
        _require(bool(self.name), "sweep name must be non-empty")
        object.__setattr__(self, "families", tuple(self.families))
        _require(
            len(self.families) >= 1, "sweep must name at least one family"
        )
        for family in self.families:
            _require(
                family in ATTACK_FAMILIES,
                f"unknown attack family {family!r} "
                f"(known: {', '.join(sorted(ATTACK_FAMILIES))})",
            )
        _require(
            len(set(self.families)) == len(self.families),
            "families contains duplicates",
        )
        _require(self.attack_count >= 1, "attack_count must be >= 1")
        object.__setattr__(
            self, "rov_rates", _rates(self.rov_rates, "rov_rates")
        )
        object.__setattr__(
            self, "drop_rates", _rates(self.drop_rates, "drop_rates")
        )
        object.__setattr__(
            self,
            "route_server_rates",
            _rates(self.route_server_rates, "route_server_rates"),
        )
        _require(
            self.listing_delay_days >= 0,
            "listing_delay_days must be >= 0",
        )
        if self.sample is not None:
            _require(self.sample >= 1, "sample must be >= 1")
        # WorldScale validates scale/seed (unknown scale raises there).
        WorldScale(scale=self.scale, seed=self.seed)

    # -- serialization --------------------------------------------------

    def canonical_dict(self) -> dict:
        doc = asdict(self)
        doc["families"] = list(self.families)
        doc["rov_rates"] = list(self.rov_rates)
        doc["drop_rates"] = list(self.drop_rates)
        doc["route_server_rates"] = list(self.route_server_rates)
        return doc

    def to_json(self) -> str:
        return json.dumps(self.canonical_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_dict(cls, payload: dict) -> "SweepSpec":
        _require(
            isinstance(payload, dict), "sweep spec must be a JSON object"
        )
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(payload) - known)
        _require(
            not unknown,
            f"unknown sweep spec keys: {', '.join(unknown)}",
        )
        coerced = dict(payload)
        for key in ("families", "rov_rates", "drop_rates", "route_server_rates"):
            if key in coerced:
                _require(
                    isinstance(coerced[key], (list, tuple)),
                    f"{key} must be a list",
                )
                coerced[key] = tuple(coerced[key])
        try:
            return cls(**coerced)
        except TypeError as error:
            raise SweepSpecError(f"invalid sweep spec: {error}") from error

    @classmethod
    def from_json(cls, text: str) -> "SweepSpec":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as error:
            raise SweepSpecError(
                f"sweep spec is not valid JSON: {error}"
            ) from error
        return cls.from_dict(payload)

    # -- expansion -------------------------------------------------------

    @property
    def grid_size(self) -> int:
        return (
            len(self.families)
            * len(self.rov_rates)
            * len(self.drop_rates)
            * len(self.route_server_rates)
        )

    def cells(self) -> tuple[tuple[str, Scenario], ...]:
        """Every (cell name, scenario) this sweep runs, in grid order.

        With ``sample`` set, a seeded random draw over the full grid —
        the same spec always samples the same cells, so resume works
        for sampled sweeps too.
        """
        base = WorldScale(scale=self.scale, seed=self.seed)
        grid: list[tuple[str, Scenario]] = []
        for family in self.families:
            attack = ATTACK_FAMILIES[family](count=self.attack_count)
            for rov in self.rov_rates:
                for drop in self.drop_rates:
                    for rs in self.route_server_rates:
                        cell_name = (
                            f"{family}/rov{rov:g}/drop{drop:g}/rs{rs:g}"
                        )
                        scenario = Scenario(
                            name=cell_name,
                            base=base,
                            attacks=(attack,),
                            defenses=(
                                RovDeployment(rate=rov),
                                RouteServerFiltering(rate=rs),
                                DropSubscription(
                                    rate=drop,
                                    listing_delay_days=(
                                        self.listing_delay_days
                                    ),
                                ),
                            ),
                        )
                        grid.append((cell_name, scenario))
        if self.sample is not None and self.sample < len(grid):
            picked = random.Random(self.sample_seed).sample(
                range(len(grid)), self.sample
            )
            grid = [grid[i] for i in sorted(picked)]
        return tuple(grid)
