"""The paper's five playbooks, as composable DSL pieces.

This module holds the generation code that used to live in
``repro.synth.scenarios`` (retired), reorganized into five named
:class:`Playbook` compositions — the paper's scenario content expressed
in the DSL:

* ``drop-listing`` — the DROP population plan: categories x regions x
  removal, listing/removal dates, carved prefixes, SBL records and the
  DROP episodes themselves (Fig 1, Table 2, Appendix A).
* ``bgp-withdrawal`` — per-category announcement histories, withdrawal
  behaviour after listing, and RIR deallocations (Fig 2, §4.1).
* ``irr-registration`` — route-object registration/removal timing, the
  hijacker-matching objects and ORG-ID clusters (Fig 3, §5).
* ``rpki-signing`` — post-listing signing at per-region rates, the
  presigned ROAs, and the operator-AS0 story (Table 1, §4.2, §6.2.1).
* ``case-study`` — the RPKI-valid hijack of 132.255.0.0/22 and its
  sibling prefixes (Fig 4, §6.1).

Each playbook contributes *hooks* pinned to slots of the fixed
:data:`PIPELINE`; :func:`apply_playbooks` runs the union of all hooks
in pipeline order.  That order is exactly the call sequence of the
legacy ``build_drop_population`` + ``build_case_study`` pair, and every
hook draws from the same builder RNG streams in the same order — so
composing :data:`PAPER_PLAYBOOKS` produces a world byte-identical to
the legacy path (pinned by the scenario golden test).

Everything is written through the same substrate APIs a real pipeline
would populate from the archives, so analyses cannot tell the
difference.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import date, timedelta
from typing import TYPE_CHECKING, Callable

import numpy as np

from ..bgp.messages import ASPath
from ..drop.categories import Category
from ..drop.droplist import DropEpisode
from ..drop.sbl import SblRecord
from ..irr.radb import RouteObjectRecord
from ..irr.rpsl import RouteObject
from ..net.prefix import IPv4Prefix
from ..synth.sbltext import sbl_text
from ..synth.world import CaseStudyTruth, DropTruth

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..synth.builder import WorldBuilder

__all__ = [
    "PAPER_PLAYBOOKS",
    "PIPELINE",
    "Playbook",
    "PlaybookContext",
    "apply_playbooks",
    "build_case_study",
    "build_drop_population",
]

# The paper's cast of ASNs (Fig 4 / §5).
OWNER_ASN = 263692
OWNER_TRANSIT = 21575
HIJACK_TRANSIT = 50509
HIJACK_SECOND = 34665
HISTORIC_ORIGIN_2018 = 19361
HISTORIC_PAIR = (16735, 263330)
HISTORIC_PAIR_2 = (3549, 28129)

CASE_PREFIX = "132.255.0.0/22"
CASE_DROP_DAY = date(2022, 3, 4)
OPERATOR_AS0_PREFIX = "45.65.112.0/22"

_CATEGORY_LENGTHS: dict[Category, tuple[int, int]] = {
    Category.HIJACKED: (19, 22),
    Category.SNOWSHOE: (20, 24),
    Category.KNOWN_SPAM: (20, 23),
    Category.MALICIOUS_HOSTING: (19, 22),
    Category.NO_RECORD: (20, 23),
    Category.UNALLOCATED: (17, 22),
}


@dataclass
class _Entry:
    """One planned DROP entry, mutated as scenario stages decorate it."""

    categories: frozenset[Category]
    region: str
    removed: bool
    unallocated: bool = False
    incident: bool = False
    presigned: bool = False
    special: str | None = None  # "operator-as0"
    # Filled during generation:
    prefix: IPv4Prefix | None = None
    listed: date | None = None
    removed_on: date | None = None
    hijacker_asn: int | None = None
    origin_at_listing: int | None = None
    withdrawn: bool = False
    announce_start: date | None = None
    announce_end: date | None = None
    irr_plan: str | None = None  # hijacker / hijacker-late / other / incident
    irr_org: str | None = None
    irr_created: date | None = None
    irr_removed: date | None = None
    irr_origin: int | None = None
    irr_recent: bool = False
    preexisting_irr: bool = False
    sbl_id: str | None = None
    with_asn: bool = False
    keywordless: bool = False
    deallocate_on: date | None = None
    signs_after: bool = False
    sign_relation: str | None = None


# ---------------------------------------------------------------------------
# planning helpers
# ---------------------------------------------------------------------------


def _plan_entries(b: "WorldBuilder") -> list[_Entry]:
    """Lay out categories × regions × removal for the whole population."""
    cfg = b.cfg
    rng = b.rng_drop

    # Region/removal slots for the Table-1 population (minus the three
    # case-study siblings, which are LACNIC/present hijacks added later).
    slots: list[tuple[str, bool]] = []
    for rir, profile in cfg.regions.items():
        slots.extend((rir, True) for _ in range(profile.drop_removed))
        present = profile.drop_present
        if rir == "LACNIC":
            present -= 3  # reserved for the Figure 4 siblings
        slots.extend((rir, False) for _ in range(present))

    # Category labels to spread over those slots.
    overlap_hj = min(7, cfg.snowshoe_overlap)
    overlap_ks = cfg.snowshoe_overlap - overlap_hj
    regionized_hj = (
        cfg.hijacked_prefixes
        - cfg.afrinic_incident_prefixes
        - cfg.presigned_hijacks
        - overlap_hj
    )
    labels: list[frozenset[Category]] = []
    labels += [frozenset({Category.HIJACKED})] * (regionized_hj - 3)
    labels += [
        frozenset({Category.SNOWSHOE, Category.HIJACKED})
    ] * overlap_hj
    labels += [
        frozenset({Category.SNOWSHOE, Category.KNOWN_SPAM})
    ] * overlap_ks
    labels += [frozenset({Category.SNOWSHOE})] * (
        cfg.snowshoe_prefixes - cfg.snowshoe_overlap
    )
    labels += [frozenset({Category.KNOWN_SPAM})] * (
        cfg.known_spam_prefixes - overlap_ks
    )
    labels += [frozenset({Category.MALICIOUS_HOSTING})] * (
        cfg.malicious_hosting_prefixes
    )
    labels += [frozenset({Category.NO_RECORD})] * cfg.no_record_prefixes

    # `presigned_other` non-hijack labels become their own entries with a
    # ROA at listing (excluded from Table 1 by the analysis itself).
    presigned_labels: list[frozenset[Category]] = []
    candidates = [
        i
        for i, label in enumerate(labels)
        if Category.HIJACKED not in label
        and Category.NO_RECORD not in label
    ]
    chosen = rng.choice(
        np.array(candidates), size=cfg.presigned_other, replace=False
    )
    for index in sorted((int(i) for i in chosen), reverse=True):
        presigned_labels.append(labels.pop(index))

    if len(labels) != len(slots):
        raise AssertionError(
            f"planning mismatch: {len(labels)} labels vs {len(slots)} slots"
        )

    # Bias NO_RECORD onto removed slots: a missing SBL record means the
    # holder remediated, which correlates with removal from DROP.
    rng.shuffle(slots)
    removed_slots = [s for s in slots if s[1]]
    present_slots = [s for s in slots if not s[1]]
    nr_labels = [l for l in labels if Category.NO_RECORD in l]
    other_labels = [l for l in labels if Category.NO_RECORD not in l]
    rng.shuffle(other_labels)
    nr_to_removed = min(len(nr_labels), (3 * len(removed_slots)) // 4)
    entries: list[_Entry] = []
    for label, (region, removed) in zip(
        nr_labels[:nr_to_removed], removed_slots
    ):
        entries.append(_Entry(label, region, removed))
    rest_labels = nr_labels[nr_to_removed:] + other_labels
    rest_slots = removed_slots[nr_to_removed:] + present_slots
    rng.shuffle(rest_slots)
    for label, (region, removed) in zip(rest_labels, rest_slots):
        entries.append(_Entry(label, region, removed))

    # Presigned non-hijack entries.
    presigned_regions = ("RIPE", "ARIN", "APNIC")
    for index, label in enumerate(presigned_labels):
        entries.append(
            _Entry(
                label,
                presigned_regions[index % len(presigned_regions)],
                removed=bool(rng.random() < 0.5),
                presigned=True,
            )
        )

    # Unallocated entries, by region quota (Figure 6 clusters).
    for rir, profile in cfg.regions.items():
        for _ in range(profile.unallocated_drop_prefixes):
            entries.append(
                _Entry(
                    frozenset({Category.UNALLOCATED}),
                    rir,
                    removed=bool(rng.random() < 0.5),
                    unallocated=True,
                )
            )

    # AFRINIC incidents: two clusters of large hijacked blocks.
    for index in range(cfg.afrinic_incident_prefixes):
        entries.append(
            _Entry(
                frozenset({Category.HIJACKED}),
                "AFRINIC",
                removed=False,
                incident=True,
            )
        )

    # One LACNIC removed hijack becomes the operator-AS0 story.
    for entry in entries:
        if (
            entry.region == "LACNIC"
            and entry.removed
            and not entry.unallocated
            and not entry.incident
            and entry.categories == {Category.HIJACKED}
        ):
            entry.special = "operator-as0"
            break
    return entries


def _assign_dates(b: "WorldBuilder", entries: list[_Entry]) -> None:
    """Listing and removal dates (incidents and specials pinned)."""
    cfg = b.cfg
    rng = b.rng_drop
    window = cfg.window
    incident_days = (date(2019, 7, 15), date(2021, 3, 10))
    incident_toggle = 0
    for entry in entries:
        if entry.incident:
            entry.listed = incident_days[incident_toggle % 2]
            incident_toggle += 1
            entry.removed_on = None
            continue
        if entry.special == "operator-as0":
            entry.listed = date(2020, 1, 28)
            entry.removed_on = date(2021, 6, 16)
            continue
        if entry.unallocated and entry.region == "LACNIC":
            # Clustered around early 2021 (Figure 6).
            center = date(2021, 2, 1)
            offset = int(rng.normal(0, 150))
            entry.listed = window.clamp(center + timedelta(days=offset))
        else:
            latest = window.end - (timedelta(days=45) if entry.removed else
                                   timedelta(days=0))
            entry.listed = b.uniform_day(rng, window.start, latest)
        if entry.removed:
            earliest = entry.listed + timedelta(days=30)
            if earliest > window.end:
                # Listed too close to the window end (the clustered
                # unallocated dates can land here): either remove on the
                # last day or stay listed.
                if entry.listed < window.end:
                    entry.removed_on = window.end
                else:
                    entry.removed = False
                    entry.removed_on = None
            else:
                entry.removed_on = b.uniform_day(
                    rng, earliest, window.end
                )
        else:
            entry.removed_on = None


def _assign_prefixes(b: "WorldBuilder", entries: list[_Entry]) -> None:
    """Carve address space; allocate everything except UA prefixes."""
    rng = b.rng_drop
    incident_lengths = [16] * 22 + [18] * 23
    rng.shuffle(incident_lengths)
    incident_index = 0
    for entry in entries:
        if entry.special == "operator-as0":
            prefix = IPv4Prefix.parse(OPERATOR_AS0_PREFIX)
            b.resources.delegate_to_rir("LACNIC", prefix)
        elif entry.incident:
            length = incident_lengths[incident_index]
            incident_index += 1
            prefix = b.carver.carve(length)
        elif entry.unallocated:
            lo, hi = _CATEGORY_LENGTHS[Category.UNALLOCATED]
            prefix = b.carve_unallocated(
                entry.region, int(rng.integers(lo, hi + 1))
            )
        else:
            primary = _primary_category(entry.categories)
            lo, hi = _CATEGORY_LENGTHS[primary]
            prefix = b.carver.carve(int(rng.integers(lo, hi + 1)))
        entry.prefix = prefix
        if not entry.unallocated:
            if not entry.special == "operator-as0":
                b.resources.delegate_to_rir(entry.region, prefix)
            holder = (
                f"incident-holder-{prefix.network >> 16}"
                if entry.incident
                else f"drop-holder-{prefix.network >> 8}"
            )
            alloc_day = (
                date(2019, 2, 1)
                if entry.incident
                else b.uniform_day(rng, date(2006, 1, 1), date(2016, 12, 31))
            )
            b.resources.allocate(prefix, entry.region, alloc_day, holder=holder)


def _primary_category(categories: frozenset[Category]) -> Category:
    for category in (
        Category.HIJACKED,
        Category.MALICIOUS_HOSTING,
        Category.KNOWN_SPAM,
        Category.SNOWSHOE,
        Category.UNALLOCATED,
        Category.NO_RECORD,
    ):
        if category in categories:
            return category
    raise ValueError("empty category set")


# ---------------------------------------------------------------------------
# behavioural stages
# ---------------------------------------------------------------------------


def _plan_irr(b: "WorldBuilder", entries: list[_Entry]) -> None:
    """Decide who gets route objects, under which ORG-IDs, and when."""
    cfg = b.cfg
    rng = b.rng_irr

    hijack_candidates = [
        e
        for e in entries
        if Category.HIJACKED in e.categories
        and not e.incident
        and not e.presigned
        and not e.unallocated
    ]
    rng.shuffle(hijack_candidates)

    # The 130 hijacks whose SBL names the hijacker ASN.
    for entry in hijack_candidates[: cfg.hijacks_with_asn]:
        entry.with_asn = True

    # 57 of those have a matching route object; three ORG-IDs cover 49.
    matching = [e for e in hijack_candidates if e.with_asn][
        : cfg.irr_hijacker_objects
    ]
    defunct_asns = [60_000 + i for i in range(cfg.irr_hijacker_asn_count)]
    org_sizes = _split_cluster(
        cfg.irr_hijacker_org_cluster,
        cfg.irr_hijacker_org_count,
        cfg.irr_prolific_org_objects,
    )
    orgs: list[str] = []
    for org_index, size in enumerate(org_sizes):
        orgs.extend([f"ORG-HJK{org_index + 1}"] * size)
    orgs.extend(
        f"ORG-SOLO{i}" for i in range(len(matching) - len(orgs))
    )
    for index, entry in enumerate(matching):
        entry.irr_plan = "hijacker"
        entry.irr_org = orgs[index]
        entry.irr_origin = defunct_asns[index % len(defunct_asns)]
        entry.hijacker_asn = entry.irr_origin
    # The prolific ORG-ID's prefixes transit AS50509 (handled in BGP stage
    # via the org name).  Two records postdate the BGP announcement by a
    # year or more.
    for entry in matching[-cfg.irr_late_records:]:
        entry.irr_plan = "hijacker-late"
    for entry in matching[: cfg.irr_preexisting_entries]:
        entry.preexisting_irr = True

    # Hijacks with a labeled ASN but no matching object: give them a
    # hijacker ASN for the SBL text anyway.
    attacker_pool = [61_000 + i for i in range(40)]
    for entry in hijack_candidates:
        if entry.with_asn and entry.hijacker_asn is None:
            entry.hijacker_asn = attacker_pool[
                int(rng.integers(len(attacker_pool)))
            ]

    # Incidents all carry (old) fraudulent route objects.
    incident_entries = [e for e in entries if e.incident]
    for entry in incident_entries:
        entry.irr_plan = "incident"
        entry.irr_org = "ORG-INCIDENT1" if entry.listed and entry.listed.year == 2019 else "ORG-INCIDENT2"

    # One unallocated prefix got into the IRR (§5's closing observation).
    ua_entries = [e for e in entries if e.unallocated]
    if ua_entries:
        ua_entries[0].irr_plan = "other"

    # Fill to the 226 total with route objects on other entries.  Exclude
    # labeled-ASN hijacks (their object, if any, is the hijacker-matching
    # kind counted above) and unallocated prefixes (only the one designated
    # UA prefix ever got past RADb).
    have = sum(1 for e in entries if e.irr_plan is not None)
    others = [
        e
        for e in entries
        if e.irr_plan is None
        and not e.presigned
        and not e.with_asn
        and not e.unallocated
    ]
    rng.shuffle(others)
    # Larger blocks are likelier to be registered (they belong to real
    # operations with paperwork to fake); this also reproduces the §5
    # finding that the 31.7% of prefixes with objects cover 68.8% of the
    # DROP address space.
    others.sort(
        key=lambda e: e.prefix.num_addresses if e.prefix else 0,
        reverse=True,
    )
    for entry in others[: max(0, cfg.irr_object_prefixes - have)]:
        entry.irr_plan = "other"

    # Timing.  Target: ~32% of the 226 created within the month before
    # listing.  Hijacker objects land there by construction; top up with
    # "other" objects until the quota is met.
    with_objects = [e for e in entries if e.irr_plan is not None]
    recent_target = round(
        cfg.irr_object_prefixes * cfg.irr_created_before_listing_rate
    )
    recent_now = sum(
        1 for e in with_objects if e.irr_plan in ("hijacker",)
    )
    other_objects = [e for e in with_objects if e.irr_plan == "other"]
    for entry in other_objects:
        if recent_now < recent_target:
            entry.irr_recent = True
            recent_now += 1
    # Removal within a month after listing: 43% of the 226, hijacker
    # objects first (attackers clean up), then others.
    removal_target = round(
        cfg.irr_object_prefixes * cfg.irr_removed_after_listing_rate
    )
    removal_now = 0
    for entry in with_objects:
        if removal_now >= removal_target:
            break
        if entry.irr_plan in ("hijacker", "hijacker-late"):
            entry.irr_removed = entry.listed + timedelta(
                days=int(rng.integers(3, 29))
            )
            removal_now += 1
    for entry in with_objects:
        if removal_now >= removal_target:
            break
        if entry.irr_plan == "other" and entry.irr_removed is None:
            entry.irr_removed = entry.listed + timedelta(
                days=int(rng.integers(3, 29))
            )
            removal_now += 1


def _split_cluster(total: int, orgs: int, prolific: int) -> list[int]:
    """Split ``total`` route objects over ``orgs`` ORG-IDs, one prolific."""
    rest = total - prolific
    base = rest // (orgs - 1)
    sizes = [prolific] + [base] * (orgs - 1)
    sizes[-1] += rest - base * (orgs - 1)
    return sizes


def _quota_flags(
    rng: np.random.Generator, count: int, rate: float
) -> list[bool]:
    """Exactly ``round(count * rate)`` Trues, in shuffled order.

    Quota draws instead of Bernoulli keep small-population statistics
    (withdrawal and signing rates) at the paper's values instead of
    drifting by sampling noise.
    """
    flags = [True] * round(count * rate)
    flags += [False] * (count - len(flags))
    rng.shuffle(flags)
    return flags


def _apply_bgp(b: "WorldBuilder", entries: list[_Entry]) -> None:
    """Announcement histories and withdrawal behaviour."""
    cfg = b.cfg
    rng = b.rng_drop

    # Withdrawal-within-30-days flags, exact per category class (§4.1:
    # hijacked 70.7%, unallocated 54.8%, everything else low).
    classes: dict[str, list[_Entry]] = {"hj": [], "ua": [], "other": []}
    for entry in entries:
        if Category.HIJACKED in entry.categories and not entry.incident:
            classes["hj"].append(entry)
        elif entry.unallocated:
            classes["ua"].append(entry)
        else:
            classes["other"].append(entry)
    rates = {
        "hj": cfg.withdrawal_rate_hijacked,
        "ua": cfg.withdrawal_rate_unallocated,
        "other": cfg.withdrawal_rate_other,
    }
    for name, members in classes.items():
        for entry, flag in zip(
            members, _quota_flags(rng, len(members), rates[name])
        ):
            entry.withdrawn = flag and entry.sign_relation != "none"

    for entry in entries:
        assert entry.prefix is not None and entry.listed is not None
        hijack_like = (
            Category.HIJACKED in entry.categories or entry.unallocated
        )

        if entry.irr_plan in ("hijacker", "hijacker-late"):
            origin = entry.irr_origin
            assert origin is not None
            transit = (
                HIJACK_TRANSIT
                if entry.irr_org == "ORG-HJK1"
                else 62_000 + int(rng.integers(20))
            )
            if entry.irr_plan == "hijacker":
                # Announced 5-25 days before listing; the IRR record (set
                # in _apply_irr) lands 0-6 days before the announcement.
                entry.announce_start = entry.listed - timedelta(
                    days=int(rng.integers(5, 26))
                )
            else:
                # Announced over a year before the (late) IRR record.
                entry.announce_start = entry.listed - timedelta(
                    days=int(rng.integers(450, 720))
                )
            path = ASPath.of(transit, origin)
        elif hijack_like:
            origin = entry.hijacker_asn or b.next_asn()
            entry.hijacker_asn = entry.hijacker_asn or origin
            entry.announce_start = entry.listed - timedelta(
                days=int(rng.integers(3, 60))
            )
            path = ASPath.of(62_000 + int(rng.integers(20)), origin)
        else:
            # Legitimately-allocated space used maliciously: announced by
            # its holder for years, through real transit.
            origin = b.next_asn()
            b.topology.attach_edge_network(origin)
            entry.announce_start = b.uniform_day(
                rng, cfg.bgp_history_start, cfg.window.start
            )
            path = b.topology.path_from_core(origin)

        if entry.withdrawn:
            entry.announce_end = entry.listed + timedelta(
                days=int(rng.integers(1, 29))
            )
        elif entry.sign_relation == "none":
            entry.announce_end = entry.listed - timedelta(days=45)
        else:
            entry.announce_end = None
        if (
            entry.announce_end is not None
            and entry.announce_end < entry.announce_start
        ):
            entry.announce_end = entry.announce_start

        announced_at_listing = entry.announce_start <= entry.listed and (
            entry.announce_end is None or entry.announce_end >= entry.listed
        )
        entry.origin_at_listing = origin if announced_at_listing else None
        b.announce(
            entry.prefix,
            path,
            entry.announce_start,
            entry.announce_end,
            listed=entry.listed,
            delisted=entry.removed_on,
        )


def _apply_deallocations(b: "WorldBuilder", entries: list[_Entry]) -> None:
    """§4.1: MH deallocations and removal-linked deallocations."""
    cfg = b.cfg
    rng = b.rng_drop
    window = cfg.window
    mh_entries = [
        e
        for e in entries
        if Category.MALICIOUS_HOSTING in e.categories and not e.unallocated
    ]
    mh_target = round(len(mh_entries) * cfg.mh_deallocation_rate)
    close_toggle = 0

    def dealloc_before_removal(entry: _Entry) -> bool:
        """Deallocate a removed entry; alternate the week-gap pattern.

        Returns False when the listing episode is too short to fit the
        "deallocated well before removal" variant.
        """
        nonlocal close_toggle
        assert entry.removed_on is not None
        span = (entry.removed_on - entry.listed).days
        close = close_toggle % 2 == 0
        if not close and span < 45:
            return False
        close_toggle += 1
        delta = (
            int(rng.integers(1, 8))
            if close
            else int(rng.integers(30, min(200, span - 10)))
        )
        entry.deallocate_on = entry.removed_on - timedelta(days=delta)
        return True

    # Prefer removed MH entries so the removal-deallocation coupling holds.
    mh_entries.sort(key=lambda e: not e.removed)
    assigned = 0
    for entry in mh_entries:
        if assigned >= mh_target:
            break
        if entry.removed and entry.removed_on is not None:
            if not dealloc_before_removal(entry):
                continue
        else:
            earliest = min(
                entry.listed + timedelta(days=30), window.end
            )
            entry.deallocate_on = b.uniform_day(rng, earliest, window.end)
        assigned += 1
    # Top up so ~8.8% of *removed* prefixes are deallocated.
    removed_entries = [
        e for e in entries if e.removed and not e.unallocated and not e.incident
    ]
    target = round(len(removed_entries) * cfg.removed_deallocation_rate)
    have = sum(1 for e in removed_entries if e.deallocate_on is not None)
    for entry in removed_entries:
        if have >= target:
            break
        if entry.deallocate_on is None and entry.removed_on is not None:
            if dealloc_before_removal(entry):
                have += 1
    for entry in entries:
        if entry.deallocate_on is not None:
            b.resources.deallocate(entry.prefix, entry.deallocate_on)


def _apply_irr(b: "WorldBuilder", entries: list[_Entry]) -> None:
    """Write the planned route objects into the RADb journal."""
    rng = b.rng_irr
    for entry in entries:
        if entry.irr_plan is None:
            continue
        assert entry.prefix is not None and entry.listed is not None
        if entry.irr_plan == "hijacker":
            assert entry.announce_start is not None
            created = entry.announce_start - timedelta(
                days=int(rng.integers(0, 7))
            )
            origin = entry.irr_origin
            entry.irr_recent = True
        elif entry.irr_plan == "hijacker-late":
            created = entry.listed - timedelta(days=int(rng.integers(10, 60)))
            origin = entry.irr_origin
        elif entry.irr_plan == "incident":
            created = entry.listed - timedelta(
                days=int(rng.integers(60, 540))
            )
            origin = 63_000 + int(rng.integers(10))
        else:  # "other"
            if entry.irr_recent:
                created = entry.listed - timedelta(
                    days=int(rng.integers(5, 29))
                )
            else:
                created = entry.listed - timedelta(
                    days=int(rng.integers(60, 1500))
                )
            origin = entry.origin_at_listing or b.next_asn()
        assert origin is not None
        org = entry.irr_org or f"ORG-GEN{entry.prefix.network % 9973}"
        b.irr.add(
            RouteObjectRecord(
                route=RouteObject(
                    prefix=entry.prefix,
                    origin=origin,
                    maintainer=f"MAINT-{org}",
                    org_id=org,
                    descr="registered route",
                ),
                created=created,
                deleted=entry.irr_removed,
            )
        )
        entry.irr_created = created
        if entry.irr_org and entry.irr_org.startswith("ORG-HJK"):
            b.truth.hijacker_orgs.setdefault(entry.irr_org, []).append(
                entry.prefix
            )
        if entry.preexisting_irr:
            b.irr.add(
                RouteObjectRecord(
                    route=RouteObject(
                        prefix=entry.prefix,
                        origin=b.next_asn(),
                        maintainer="MAINT-LEGIT",
                        org_id=f"ORG-VICTIM{entry.prefix.network % 997}",
                        descr="original holder",
                    ),
                    created=date(2012, 6, 1),
                    deleted=None,
                )
            )


def _apply_rpki(b: "WorldBuilder", entries: list[_Entry]) -> None:
    """Presigned ROAs, post-listing signing, and the operator-AS0 story."""
    cfg = b.cfg
    rng = b.rng_rpki
    window = cfg.window
    for entry in entries:
        assert entry.prefix is not None and entry.listed is not None
        if entry.special == "operator-as0":
            # §6.2.1: signed with AS0 on 2021-05-05, delisted 2021-06-16.
            b.sign(
                entry.prefix,
                0,
                date(2021, 5, 5),
                trust_anchor=entry.region,
                max_length=32,
            )
            entry.signs_after = True
            entry.sign_relation = "as0"
            b.truth.operator_as0_prefix = entry.prefix
            continue
        if entry.presigned:
            # Non-hijack prefixes that already had a ROA when listed.
            b.sign(
                entry.prefix,
                entry.origin_at_listing or b.next_asn(),
                window.start - timedelta(days=int(rng.integers(30, 400))),
                trust_anchor=entry.region,
            )
            continue
        if entry.unallocated or entry.incident:
            continue
        if not entry.signs_after:
            continue
        if entry.sign_relation == "same":
            signer = entry.origin_at_listing or b.next_asn()
        else:
            signer = b.next_asn()
        earliest = (
            entry.removed_on
            if entry.removed_on is not None
            else entry.listed + timedelta(days=30)
        )
        if earliest >= window.end:
            earliest = window.end - timedelta(days=1)
        signed_on = b.uniform_day(rng, earliest, window.end)
        b.sign(entry.prefix, signer, signed_on, trust_anchor=entry.region)


def _apply_sbl_and_listing(b: "WorldBuilder", entries: list[_Entry]) -> None:
    """SBL records (with Appendix-A text) and the DROP episodes."""
    cfg = b.cfg
    rng = b.rng_sbl
    labeled = [
        e for e in entries if Category.NO_RECORD not in e.categories
    ]
    keywordless_target = round(len(labeled) * 0.073)
    shuffled = list(labeled)
    rng.shuffle(shuffled)
    for entry in shuffled[:keywordless_target]:
        if len(entry.categories) == 1:
            entry.keywordless = True
    # Beyond the 130 hijack ASNs, other records also name ASNs (190 total).
    asn_mention_target = 190 - cfg.hijacks_with_asn
    for entry in shuffled:
        if asn_mention_target <= 0:
            break
        if not entry.with_asn and Category.HIJACKED not in entry.categories:
            entry.with_asn = True
            entry.hijacker_asn = entry.hijacker_asn or b.next_asn()
            asn_mention_target -= 1

    for entry in entries:
        assert entry.prefix is not None and entry.listed is not None
        entry.sbl_id = b.next_sbl_id()
        if Category.NO_RECORD not in entry.categories:
            text = sbl_text(
                entry.categories,
                rng,
                asn=entry.hijacker_asn if entry.with_asn else None,
                keywordless=entry.keywordless,
            )
            b.sbl.add(
                SblRecord(
                    sbl_id=entry.sbl_id,
                    prefix=entry.prefix,
                    text=text,
                    created=entry.listed,
                    removed=None,
                )
            )
            if entry.keywordless:
                b.manual_overrides[entry.sbl_id] = entry.categories
        b.drop.add(
            DropEpisode(
                prefix=entry.prefix,
                added=entry.listed,
                removed=entry.removed_on,
                sbl_id=entry.sbl_id,
            )
        )
        b.truth.drop[entry.prefix] = DropTruth(
            prefix=entry.prefix,
            categories=entry.categories,
            listed=entry.listed,
            removed_on=entry.removed_on,
            region=entry.region,
            unallocated=entry.unallocated,
            incident=entry.incident,
            hijacker_asn=entry.hijacker_asn,
            origin_at_listing=entry.origin_at_listing,
            has_irr_object=entry.irr_plan is not None,
            irr_hijacker_match=entry.irr_plan in ("hijacker", "hijacker-late"),
            irr_created_recently=entry.irr_recent,
            irr_removed_after=entry.irr_removed is not None,
            presigned=entry.presigned,
            signs_after=entry.signs_after,
            sign_asn_relation=entry.sign_relation,
            withdrawn_30d=entry.withdrawn,
            deallocated=entry.deallocate_on is not None,
            manual_sbl=entry.keywordless,
        )


def build_drop_population(b: "WorldBuilder") -> None:
    """Generate the full DROP population (everything but Figure 4)."""
    entries = _plan_entries(b)
    _assign_dates(b, entries)
    _assign_prefixes(b, entries)
    _plan_irr(b, entries)
    _plan_rpki_signing(b, entries)
    _apply_bgp(b, entries)
    _apply_deallocations(b, entries)
    _apply_irr(b, entries)
    _apply_rpki(b, entries)
    _apply_sbl_and_listing(b, entries)


def _plan_rpki_signing(b: "WorldBuilder", entries: list[_Entry]) -> None:
    """Decide who signs after listing (Table 1), with exact quotas.

    Runs before the BGP stage because a sliver of the signers had no BGP
    origin at listing (relation "none"); their announcements must end
    before the listing date.
    """
    cfg = b.cfg
    rng = b.rng_rpki
    none_rate = max(
        0.0, 1.0 - cfg.signed_different_asn_rate - cfg.signed_same_asn_rate
    )
    for region, profile in cfg.regions.items():
        for removed in (True, False):
            group = [
                e
                for e in entries
                if e.region == region
                and e.removed == removed
                and not e.unallocated
                and not e.incident
                and not e.presigned
                and e.special is None
            ]
            rate = (
                profile.removed_signing_rate
                if removed
                else profile.present_signing_rate
            )
            signers = [
                e
                for e, flag in zip(group, _quota_flags(rng, len(group), rate))
                if flag
            ]
            relations = (
                ["different"] * round(
                    len(signers) * cfg.signed_different_asn_rate
                )
                + ["same"] * round(len(signers) * cfg.signed_same_asn_rate)
            )
            relations += ["none"] * max(0, len(signers) - len(relations))
            del relations[len(signers):]
            rng.shuffle(relations)
            for entry, relation in zip(signers, relations):
                entry.signs_after = True
                entry.sign_relation = relation


# ---------------------------------------------------------------------------
# the Figure 4 case study
# ---------------------------------------------------------------------------


def build_case_study(b: "WorldBuilder") -> None:
    """The RPKI-valid hijack of 132.255.0.0/22 and its sibling prefixes."""
    cfg = b.cfg
    history = cfg.bgp_history_start
    signed_prefix = IPv4Prefix.parse(CASE_PREFIX)
    unrouted_since = date(2020, 7, 10)
    hijack_start = date(2020, 12, 15)
    second_wave = date(2021, 6, 10)
    hijack_path = ASPath.of(HIJACK_TRANSIT, HIJACK_SECOND, OWNER_ASN)

    # The signed prefix: owned by a Peruvian AS, signed in 2018, unrouted
    # from July 2020, hijacked RPKI-validly in December 2020.
    b.resources.delegate_to_rir("LACNIC", signed_prefix)
    b.resources.allocate(
        signed_prefix, "LACNIC", date(2014, 3, 1), holder="peru-net",
        country="PE",
    )
    b.sign(signed_prefix, OWNER_ASN, date(2018, 3, 1), trust_anchor="LACNIC")
    b.announce(
        signed_prefix,
        ASPath.of(OWNER_TRANSIT, OWNER_ASN),
        history,
        unrouted_since,
    )
    b.announce(
        signed_prefix,
        hijack_path,
        hijack_start,
        None,
        listed=CASE_DROP_DAY,
    )
    # RPKI-invalid more-specifics in the June 2021 wave.
    for sub in signed_prefix.subnets(24):
        b.announce(sub, hijack_path, second_wave, None)

    # The six sibling prefixes (same origin+transit pattern, unsigned).
    sibling_specs = [
        ("187.19.64.0/20", HISTORIC_ORIGIN_2018, None, second_wave, False),
        ("187.110.192.0/20", HISTORIC_ORIGIN_2018, None, second_wave, False),
        ("191.7.224.0/19", HISTORIC_PAIR[1], HISTORIC_PAIR[0], hijack_start,
         True),
        ("200.150.240.0/20", None, None, second_wave, True),
        ("200.189.64.0/20", HISTORIC_PAIR_2[1], HISTORIC_PAIR_2[0],
         second_wave, True),
        ("200.202.80.0/20", None, None, hijack_start, False),
    ]
    siblings: list[IPv4Prefix] = []
    on_drop: list[IPv4Prefix] = []
    for text, historic_origin, historic_transit, start, listed in sibling_specs:
        prefix = IPv4Prefix.parse(text)
        siblings.append(prefix)
        b.resources.delegate_to_rir("LACNIC", prefix)
        b.resources.allocate(
            prefix, "LACNIC", date(2005, 6, 1),
            holder=f"abandoned-{prefix.network >> 20}",
        )
        if historic_origin is not None:
            # Last legitimately originated years before the hijack
            # ("origin AS19361 in 2018"); others were unrouted for ~15 yrs.
            b.announce(
                prefix,
                ASPath.of(historic_transit or 3549, historic_origin),
                history,
                date(2018, 10, 1),
            )
        listed_day = CASE_DROP_DAY if listed else None
        b.announce(
            prefix, hijack_path, start, None, listed=listed_day
        )
        if listed:
            on_drop.append(prefix)

    # DROP entries: the signed prefix plus three siblings, March 4 2022.
    for prefix in [signed_prefix] + on_drop:
        sbl_id = b.next_sbl_id()
        text = (
            f"Hijacked netblock announced via AS{HIJACK_TRANSIT} with "
            f"forged origin AS{OWNER_ASN}"
        )
        b.sbl.add(
            SblRecord(
                sbl_id=sbl_id,
                prefix=prefix,
                text=text,
                created=CASE_DROP_DAY,
            )
        )
        b.drop.add(
            DropEpisode(
                prefix=prefix,
                added=CASE_DROP_DAY,
                removed=None,
                sbl_id=sbl_id,
            )
        )
        b.truth.drop[prefix] = DropTruth(
            prefix=prefix,
            categories=frozenset({Category.HIJACKED}),
            listed=CASE_DROP_DAY,
            removed_on=None,
            region="LACNIC",
            hijacker_asn=HIJACK_TRANSIT,
            origin_at_listing=OWNER_ASN,
            presigned=prefix == signed_prefix,
            withdrawn_30d=False,
        )

    # The two other presigned hijacks: attacker-controlled ROAs whose ASN
    # tracked the shifting BGP origin over the two years before listing.
    for region, listed_day in (
        ("APNIC", date(2021, 2, 10)),
        ("RIPE", date(2021, 9, 20)),
    ):
        prefix = b.carver.carve(21)
        b.resources.delegate_to_rir(region, prefix)
        b.resources.allocate(
            prefix, region, date(2009, 1, 1), holder="shelf-company"
        )
        first_asn = b.next_asn()
        second_asn = b.next_asn()
        switch = listed_day - timedelta(days=400)
        b.sign(
            prefix,
            first_asn,
            listed_day - timedelta(days=730),
            trust_anchor=region,
            removed=switch,
        )
        b.sign(prefix, second_asn, switch, trust_anchor=region)
        b.announce(
            prefix,
            ASPath.of(62_050, first_asn),
            listed_day - timedelta(days=730),
            switch - timedelta(days=1),
        )
        b.announce(
            prefix,
            ASPath.of(62_050, second_asn),
            switch,
            listed_day + timedelta(days=20),
            listed=listed_day,
        )
        sbl_id = b.next_sbl_id()
        b.sbl.add(
            SblRecord(
                sbl_id=sbl_id,
                prefix=prefix,
                text=f"Hijacked range; ROA follows origin AS{second_asn}",
                created=listed_day,
            )
        )
        b.drop.add(
            DropEpisode(
                prefix=prefix, added=listed_day, removed=None, sbl_id=sbl_id
            )
        )
        b.truth.drop[prefix] = DropTruth(
            prefix=prefix,
            categories=frozenset({Category.HIJACKED}),
            listed=listed_day,
            removed_on=None,
            region=region,
            hijacker_asn=second_asn,
            origin_at_listing=second_asn,
            presigned=True,
            withdrawn_30d=True,
        )

    b.truth.case_study = CaseStudyTruth(
        signed_prefix=signed_prefix,
        owner_asn=OWNER_ASN,
        owner_transit_asn=OWNER_TRANSIT,
        hijacker_transit_asn=HIJACK_TRANSIT,
        hijacker_second_hop=HIJACK_SECOND,
        sibling_prefixes=tuple(siblings),
        siblings_on_drop=tuple(on_drop),
        unrouted_since=unrouted_since,
        hijack_start=hijack_start,
    )


# ---------------------------------------------------------------------------
# the playbook pipeline
# ---------------------------------------------------------------------------

#: The fixed slot order every playbook hook is pinned to.  The order is
#: RNG-critical: the stage functions above consume the builder's seeded
#: streams, so reordering slots would produce a different world.  It
#: mirrors the legacy ``build_drop_population`` call sequence exactly,
#: with ``case-study`` last.
PIPELINE: tuple[str, ...] = (
    "plan",
    "dates",
    "prefixes",
    "irr-plan",
    "rpki-plan",
    "bgp",
    "dealloc",
    "irr-apply",
    "rpki-apply",
    "listing",
    "case-study",
)


@dataclass
class PlaybookContext:
    """Mutable state threaded through one pipeline run.

    ``entries`` is the shared DROP-population plan: the ``plan`` hook
    creates it and every later hook decorates or applies it.
    """

    builder: "WorldBuilder"
    entries: list[_Entry] = field(default_factory=list)


@dataclass(frozen=True)
class Playbook:
    """One named composition: hooks pinned to pipeline slots."""

    name: str
    title: str
    #: ``(slot, hook)`` pairs; each slot must name a :data:`PIPELINE`
    #: entry, and no two playbooks in one composition may claim the
    #: same slot.
    hooks: tuple[tuple[str, Callable[[PlaybookContext], None]], ...]

    def __post_init__(self) -> None:
        for slot, _hook in self.hooks:
            if slot not in PIPELINE:
                raise ValueError(
                    f"playbook {self.name!r} pins unknown slot {slot!r}"
                )


def apply_playbooks(
    builder: "WorldBuilder", playbooks: tuple[Playbook, ...]
) -> PlaybookContext:
    """Run the composed hooks of ``playbooks`` in pipeline order.

    Hooks sort by their :data:`PIPELINE` slot (ties broken by playbook
    position, though compositions with duplicate slots are rejected),
    so any subset of :data:`PAPER_PLAYBOOKS` — or a future playbook
    mixing new slots in — executes deterministically.
    """
    claimed: dict[str, str] = {}
    ordered: list[tuple[int, int, Callable[[PlaybookContext], None]]] = []
    for position, playbook in enumerate(playbooks):
        for slot, hook in playbook.hooks:
            owner = claimed.get(slot)
            if owner is not None:
                raise ValueError(
                    f"pipeline slot {slot!r} claimed by both "
                    f"{owner!r} and {playbook.name!r}"
                )
            claimed[slot] = playbook.name
            ordered.append((PIPELINE.index(slot), position, hook))
    ordered.sort(key=lambda item: (item[0], item[1]))
    ctx = PlaybookContext(builder)
    for _slot, _position, hook in ordered:
        hook(ctx)
    return ctx


def _hook_plan(ctx: PlaybookContext) -> None:
    ctx.entries = _plan_entries(ctx.builder)


def _hook_dates(ctx: PlaybookContext) -> None:
    _assign_dates(ctx.builder, ctx.entries)


def _hook_prefixes(ctx: PlaybookContext) -> None:
    _assign_prefixes(ctx.builder, ctx.entries)


def _hook_irr_plan(ctx: PlaybookContext) -> None:
    _plan_irr(ctx.builder, ctx.entries)


def _hook_rpki_plan(ctx: PlaybookContext) -> None:
    _plan_rpki_signing(ctx.builder, ctx.entries)


def _hook_bgp(ctx: PlaybookContext) -> None:
    _apply_bgp(ctx.builder, ctx.entries)


def _hook_dealloc(ctx: PlaybookContext) -> None:
    _apply_deallocations(ctx.builder, ctx.entries)


def _hook_irr_apply(ctx: PlaybookContext) -> None:
    _apply_irr(ctx.builder, ctx.entries)


def _hook_rpki_apply(ctx: PlaybookContext) -> None:
    _apply_rpki(ctx.builder, ctx.entries)


def _hook_listing(ctx: PlaybookContext) -> None:
    _apply_sbl_and_listing(ctx.builder, ctx.entries)


def _hook_case_study(ctx: PlaybookContext) -> None:
    build_case_study(ctx.builder)


#: The paper's content, decomposed.  Composing all five reproduces the
#: legacy world byte for byte; dropping one drops that behaviour.
DROP_LISTING = Playbook(
    name="drop-listing",
    title="DROP population plan, SBL records, and listing episodes",
    hooks=(
        ("plan", _hook_plan),
        ("dates", _hook_dates),
        ("prefixes", _hook_prefixes),
        ("listing", _hook_listing),
    ),
)

BGP_WITHDRAWAL = Playbook(
    name="bgp-withdrawal",
    title="Announcement histories, withdrawals, deallocations (§4.1)",
    hooks=(("bgp", _hook_bgp), ("dealloc", _hook_dealloc)),
)

IRR_REGISTRATION = Playbook(
    name="irr-registration",
    title="Route-object registration fronts and ORG-ID clusters (§5)",
    hooks=(("irr-plan", _hook_irr_plan), ("irr-apply", _hook_irr_apply)),
)

RPKI_SIGNING = Playbook(
    name="rpki-signing",
    title="Post-listing signing, presigned ROAs, operator AS0 (§6)",
    hooks=(("rpki-plan", _hook_rpki_plan), ("rpki-apply", _hook_rpki_apply)),
)

CASE_STUDY = Playbook(
    name="case-study",
    title="The RPKI-valid hijack of 132.255.0.0/22 (Fig 4)",
    hooks=(("case-study", _hook_case_study),),
)

PAPER_PLAYBOOKS: tuple[Playbook, ...] = (
    DROP_LISTING,
    BGP_WITHDRAWAL,
    IRR_REGISTRATION,
    RPKI_SIGNING,
    CASE_STUDY,
)
